package circuit

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/bitslice"
	"repro/internal/word"
)

func TestConstantsAndBasicGates(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	c := b.Build([]Node{
		b.And(x, y), b.Or(x, y), b.Xor(x, y), b.Not(x), b.AndNot(x, y),
		b.Zero(), b.One(),
	})
	out := Eval(c, []uint32{0b1100, 0b1010})
	want := []uint32{
		0b1000, 0b1110, 0b0110, ^uint32(0b1100), 0b0100, 0, ^uint32(0),
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output %d = %#x, want %#x", i, out[i], want[i])
		}
	}
}

func TestFoldingIdentities(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	if b.And(x, b.Zero()) != b.Zero() {
		t.Error("x AND 0 should fold to 0")
	}
	if b.And(x, b.One()) != x {
		t.Error("x AND 1 should fold to x")
	}
	if b.Or(x, b.Zero()) != x {
		t.Error("x OR 0 should fold to x")
	}
	if b.Or(x, b.One()) != b.One() {
		t.Error("x OR 1 should fold to 1")
	}
	if b.Xor(x, b.Zero()) != x {
		t.Error("x XOR 0 should fold to x")
	}
	if b.Xor(x, x) != b.Zero() {
		t.Error("x XOR x should fold to 0")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("double negation should fold")
	}
	if b.AndNot(x, x) != b.Zero() {
		t.Error("x AND NOT x should fold to 0")
	}
	// Hash-consing: the same gate twice is shared.
	y := b.Input()
	g1 := b.And(x, y)
	g2 := b.And(y, x)
	if g1 != g2 {
		t.Error("commutative gates not shared")
	}
}

func TestNoFoldKeepsGates(t *testing.T) {
	b := NewBuilder()
	b.Fold = false
	x := b.Input()
	n1 := b.And(x, b.One())
	n2 := b.And(x, b.One())
	if n1 == n2 || n1 == x {
		t.Error("folding disabled but gates folded anyway")
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder()
	sel := b.Input()
	x := b.Input()
	y := b.Input()
	c := b.Build([]Node{b.Mux(sel, x, y)})
	got := Eval(c, []uint32{0b10, 0b01, 0b10})[0]
	// lane0: sel=0 -> x=1; lane1: sel=1 -> y=1 -> 0b11
	if got != 0b11 {
		t.Errorf("mux = %02b, want 11", got)
	}
}

func TestEvalPanicsOnWrongInputCount(t *testing.T) {
	b := NewBuilder()
	b.Input()
	c := b.Build(nil)
	defer func() {
		if recover() == nil {
			t.Error("Eval with wrong input count did not panic")
		}
	}()
	Eval(c, []uint32{1, 2})
}

var testParams = bitslice.Params{S: 9, Match: 2, Mismatch: 1, Gap: 1}

func TestSWCellCircuitMatchesBitslice32(t *testing.T) {
	testSWCellCircuit[uint32](t, true)
}

func TestSWCellCircuitMatchesBitslice64(t *testing.T) {
	testSWCellCircuit[uint64](t, true)
}

func TestSWCellCircuitUnfoldedMatches(t *testing.T) {
	testSWCellCircuit[uint32](t, false)
}

func testSWCellCircuit[W word.Word](t *testing.T, fold bool) {
	t.Helper()
	c, err := SWCellCircuit(testParams, fold)
	if err != nil {
		t.Fatal(err)
	}
	s := testParams.S
	lanes := word.Lanes[W]()
	sc := bitslice.NewScratch[W](s)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		up := bitslice.NewNum[W](s)
		left := bitslice.NewNum[W](s)
		diag := bitslice.NewNum[W](s)
		var xH, xL, yH, yL W
		for k := 0; k < lanes; k++ {
			up.Set(k, uint(rng.Uint64N(257)))
			left.Set(k, uint(rng.Uint64N(257)))
			diag.Set(k, uint(rng.Uint64N(255)))
			xH = word.SetLane(xH, k, rng.Uint64()&1 != 0)
			xL = word.SetLane(xL, k, rng.Uint64()&1 != 0)
			yH = word.SetLane(yH, k, rng.Uint64()&1 != 0)
			yL = word.SetLane(yL, k, rng.Uint64()&1 != 0)
		}
		// Reference: hand-written bit-sliced code.
		want := bitslice.NewNum[W](s)
		e := bitslice.MismatchMask(xH, xL, yH, yL)
		bitslice.SWCell(want, up, left, diag, e, testParams, sc)

		// Circuit: input layout up, left, diag, xL, xH, yL, yH.
		inputs := make([]W, 0, 3*s+4)
		inputs = append(inputs, up...)
		inputs = append(inputs, left...)
		inputs = append(inputs, diag...)
		inputs = append(inputs, xL, xH, yL, yH)
		got := Eval(c, inputs)
		for i := 0; i < s; i++ {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTheorem6GateCounts compares the compiled circuit's gate count with the
// paper's Theorem 6 figure of 48s-18 operations per SW cell. The folded
// netlist must not exceed the paper's count (constant propagation through
// the broadcast scalars removes gates the straight-line code performs), and
// must stay within a factor showing the construction is faithful.
func TestTheorem6GateCounts(t *testing.T) {
	s := testParams.S
	paper := 48*s - 18

	folded, err := SWCellCircuit(testParams, true)
	if err != nil {
		t.Fatal(err)
	}
	fg := folded.Stats().Ops()
	if fg > paper {
		t.Errorf("folded circuit has %d gates, exceeds paper's %d", fg, paper)
	}
	if fg < paper/3 {
		t.Errorf("folded circuit has only %d gates vs paper's %d — construction suspiciously small", fg, paper)
	}

	raw, err := SWCellCircuit(testParams, false)
	if err != nil {
		t.Fatal(err)
	}
	rg := raw.Stats().Ops()
	if rg <= fg {
		t.Errorf("raw circuit (%d gates) should exceed folded (%d)", rg, fg)
	}
	t.Logf("SW cell s=%d: paper %d ops, raw netlist %d gates, folded %d gates", s, paper, rg, fg)
}

func TestSWCellCircuitRejectsBadParams(t *testing.T) {
	if _, err := SWCellCircuit(bitslice.Params{S: 0, Match: 1}, true); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestStatsCountsOnlyReachable(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	used := b.And(x, y)
	b.Or(x, y) // dead gate
	c := b.Build([]Node{used})
	st := c.Stats()
	if st.Ops() != 1 || st.And != 1 || st.Or != 0 {
		t.Errorf("stats = %+v, want only the AND", st)
	}
	if st.Inputs != 2 {
		t.Errorf("inputs = %d, want 2", st.Inputs)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 {
		t.Error("NumInputs/NumOutputs wrong")
	}
}

func TestGateOpString(t *testing.T) {
	for op, want := range map[GateOp]string{
		OpInput: "input", OpZero: "zero", OpOne: "one", OpAnd: "and",
		OpOr: "or", OpXor: "xor", OpAndNot: "andnot", OpNot: "not",
	} {
		if op.String() != want {
			t.Errorf("GateOp %d String = %q, want %q", op, op.String(), want)
		}
	}
}

func BenchmarkSWCellCircuitEval(b *testing.B) {
	c, err := SWCellCircuit(testParams, true)
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]uint32, c.NumInputs())
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range inputs {
		inputs[i] = rng.Uint32()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Eval(c, inputs)
	}
}
