// Package circuit provides an explicit combinational-circuit representation
// of the BPBC computations. The paper's framing is that bulk computation
// "simulates a combinational logic circuit" for all word lanes at once; this
// package makes that literal: it builds AND/OR/XOR/NOT netlists for the
// paper's arithmetic blocks (§IV-A) and evaluates them in bulk, one word
// operation per gate. It cross-validates the hand-written bit-sliced code in
// internal/bitslice and provides exact gate counts for the paper's
// Lemmas 2-5 and Theorem 6.
package circuit

import (
	"fmt"

	"repro/internal/word"
)

// GateOp is the operation of one circuit node.
type GateOp uint8

const (
	OpInput GateOp = iota // external input
	OpZero                // constant 0
	OpOne                 // constant 1 (all lanes set)
	OpAnd
	OpOr
	OpXor
	OpAndNot // a AND NOT b, counted as one operation like the others
	OpNot
)

func (op GateOp) String() string {
	switch op {
	case OpInput:
		return "input"
	case OpZero:
		return "zero"
	case OpOne:
		return "one"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpAndNot:
		return "andnot"
	case OpNot:
		return "not"
	}
	return fmt.Sprintf("GateOp(%d)", uint8(op))
}

// Node identifies a circuit node within its Builder.
type Node int32

// Builder incrementally constructs a combinational circuit. When Fold is
// true (the default from NewBuilder), trivial identities involving the
// constants 0 and 1 are simplified and structurally identical gates are
// shared (hash-consing); disable it to count the raw, unoptimised gate
// structure.
type Builder struct {
	gates  []gate
	inputs []Node
	Fold   bool
	memo   map[gate]Node
}

type gate struct {
	op   GateOp
	a, b Node
}

// NewBuilder returns an empty builder with folding enabled.
func NewBuilder() *Builder {
	b := &Builder{Fold: true, memo: make(map[gate]Node)}
	// Reserve nodes 0 and 1 for the constants.
	b.gates = append(b.gates, gate{op: OpZero}, gate{op: OpOne})
	return b
}

// Zero returns the constant-0 node.
func (b *Builder) Zero() Node { return 0 }

// One returns the constant-1 node.
func (b *Builder) One() Node { return 1 }

// Const returns the constant node for bit v.
func (b *Builder) Const(v bool) Node {
	if v {
		return b.One()
	}
	return b.Zero()
}

// Input allocates a fresh external input node.
func (b *Builder) Input() Node {
	n := b.add(gate{op: OpInput, a: Node(len(b.inputs))})
	b.inputs = append(b.inputs, n)
	return n
}

// Inputs allocates k input nodes.
func (b *Builder) Inputs(k int) []Node {
	out := make([]Node, k)
	for i := range out {
		out[i] = b.Input()
	}
	return out
}

func (b *Builder) add(g gate) Node {
	if g.op != OpInput && b.Fold {
		if n, ok := b.memo[g]; ok {
			return n
		}
	}
	n := Node(len(b.gates))
	b.gates = append(b.gates, g)
	if g.op != OpInput && b.Fold {
		b.memo[g] = n
	}
	return n
}

func (b *Builder) isZero(n Node) bool { return b.gates[n].op == OpZero }
func (b *Builder) isOne(n Node) bool  { return b.gates[n].op == OpOne }

func (b *Builder) binary(op GateOp, x, y Node) Node {
	if b.Fold {
		// Canonicalise operand order for commutative gates so that
		// hash-consing catches (x op y) == (y op x).
		if op != OpAndNot && x > y {
			x, y = y, x
		}
		switch op {
		case OpAnd:
			switch {
			case b.isZero(x) || b.isZero(y):
				return b.Zero()
			case b.isOne(x):
				return y
			case b.isOne(y):
				return x
			case x == y:
				return x
			}
		case OpOr:
			switch {
			case b.isOne(x) || b.isOne(y):
				return b.One()
			case b.isZero(x):
				return y
			case b.isZero(y):
				return x
			case x == y:
				return x
			}
		case OpXor:
			switch {
			case b.isZero(x):
				return y
			case b.isZero(y):
				return x
			case b.isOne(x):
				return b.Not(y)
			case b.isOne(y):
				return b.Not(x)
			case x == y:
				return b.Zero()
			}
		case OpAndNot: // x &^ y
			switch {
			case b.isZero(x) || b.isOne(y):
				return b.Zero()
			case b.isZero(y):
				return x
			case b.isOne(x):
				return b.Not(y)
			case x == y:
				return b.Zero()
			}
		}
	}
	return b.add(gate{op: op, a: x, b: y})
}

// And returns x AND y.
func (b *Builder) And(x, y Node) Node { return b.binary(OpAnd, x, y) }

// Or returns x OR y.
func (b *Builder) Or(x, y Node) Node { return b.binary(OpOr, x, y) }

// Xor returns x XOR y.
func (b *Builder) Xor(x, y Node) Node { return b.binary(OpXor, x, y) }

// AndNot returns x AND NOT y (one operation on real hardware and in Go).
func (b *Builder) AndNot(x, y Node) Node { return b.binary(OpAndNot, x, y) }

// Not returns NOT x.
func (b *Builder) Not(x Node) Node {
	if b.Fold {
		switch {
		case b.isZero(x):
			return b.One()
		case b.isOne(x):
			return b.Zero()
		case b.gates[x].op == OpNot:
			return b.gates[x].a // double negation
		}
	}
	return b.add(gate{op: OpNot, a: x})
}

// Mux returns (a AND NOT sel) OR (b AND sel): b where sel is 1, else a.
func (b *Builder) Mux(sel, x, y Node) Node {
	return b.Or(b.AndNot(x, sel), b.And(y, sel))
}

// Build freezes the circuit with the given output nodes.
func (b *Builder) Build(outputs []Node) *Circuit {
	outs := append([]Node(nil), outputs...)
	return &Circuit{
		gates:   append([]gate(nil), b.gates...),
		inputs:  append([]Node(nil), b.inputs...),
		outputs: outs,
	}
}

// Circuit is an immutable compiled netlist. It is safe for concurrent
// evaluation (each Eval uses its own scratch).
type Circuit struct {
	gates   []gate
	inputs  []Node
	outputs []Node
}

// NumInputs returns the number of external inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the number of outputs.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// Stats tallies the circuit's gates by operation.
type Stats struct {
	And, Or, Xor, AndNot, Not int
	Inputs                    int
}

// Ops returns the total gate count — the circuit-simulation analogue of the
// paper's bitwise-operation counts.
func (s Stats) Ops() int { return s.And + s.Or + s.Xor + s.AndNot + s.Not }

// Stats computes the gate tally of the circuit, counting only gates
// reachable from the outputs (dead gates cost nothing at evaluation time in
// hardware terms and are excluded, mirroring how the paper counts only the
// operations actually performed).
func (c *Circuit) Stats() Stats {
	reach := make([]bool, len(c.gates))
	var mark func(n Node)
	mark = func(n Node) {
		if reach[n] {
			return
		}
		reach[n] = true
		g := c.gates[n]
		switch g.op {
		case OpAnd, OpOr, OpXor, OpAndNot:
			mark(g.a)
			mark(g.b)
		case OpNot:
			mark(g.a)
		}
	}
	for _, o := range c.outputs {
		mark(o)
	}
	var s Stats
	for i, g := range c.gates {
		if !reach[i] {
			continue
		}
		switch g.op {
		case OpAnd:
			s.And++
		case OpOr:
			s.Or++
		case OpXor:
			s.Xor++
		case OpAndNot:
			s.AndNot++
		case OpNot:
			s.Not++
		case OpInput:
			s.Inputs++
		}
	}
	return s
}

// Eval evaluates the circuit in bulk: every input and output word carries
// one bit per lane, so a single call computes the function for all
// word.Lanes[W] instances simultaneously — the BPBC technique itself.
func Eval[W word.Word](c *Circuit, inputs []W) []W {
	if len(inputs) != len(c.inputs) {
		panic(fmt.Sprintf("circuit: Eval: want %d inputs, got %d", len(c.inputs), len(inputs)))
	}
	vals := make([]W, len(c.gates))
	for i, g := range c.gates {
		switch g.op {
		case OpZero:
			vals[i] = 0
		case OpOne:
			vals[i] = word.Ones[W]()
		case OpInput:
			vals[i] = inputs[g.a]
		case OpAnd:
			vals[i] = vals[g.a] & vals[g.b]
		case OpOr:
			vals[i] = vals[g.a] | vals[g.b]
		case OpXor:
			vals[i] = vals[g.a] ^ vals[g.b]
		case OpAndNot:
			vals[i] = vals[g.a] &^ vals[g.b]
		case OpNot:
			vals[i] = ^vals[g.a]
		}
	}
	out := make([]W, len(c.outputs))
	for i, o := range c.outputs {
		out[i] = vals[o]
	}
	return out
}
