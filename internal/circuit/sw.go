package circuit

import (
	"fmt"

	"repro/internal/bitslice"
)

// Word is a bit-sliced number at the netlist level: a slice of nodes,
// little-endian (w[0] is the least significant plane).
type NetNum []Node

// BuildGreaterEq appends the paper's "greaterthan" comparator to b and
// returns the node that is 1 where a >= b (borrow complement).
func BuildGreaterEq(bld *Builder, a, c NetNum) Node {
	s := mustSame(a, c)
	p := bld.AndNot(c[0], a[0]) // ^a & b == b &^ a
	for i := 1; i < s; i++ {
		p = bld.Or(bld.And(c[i], p), bld.AndNot(bld.Xor(c[i], p), a[i]))
	}
	return bld.Not(p)
}

// BuildMax appends max(a, b) per lane.
func BuildMax(bld *Builder, a, c NetNum) NetNum {
	s := mustSame(a, c)
	ge := BuildGreaterEq(bld, a, c)
	out := make(NetNum, s)
	for i := 0; i < s; i++ {
		out[i] = bld.Mux(ge, c[i], a[i]) // a where ge=1
	}
	return out
}

// BuildAddConst appends a + v (mod 2^s) with a broadcast scalar constant.
func BuildAddConst(bld *Builder, a NetNum, v uint) NetNum {
	s := len(a)
	out := make(NetNum, s)
	cb := bld.Const(v&1 != 0)
	out[0] = bld.Xor(a[0], cb)
	p := bld.And(a[0], cb)
	for i := 1; i < s; i++ {
		bi := bld.Const(v>>uint(i)&1 != 0)
		out[i] = bld.Xor(bld.Xor(a[i], bi), p)
		p = bld.Or(bld.And(a[i], bld.Xor(bi, p)), bld.And(bi, p))
	}
	return out
}

// BuildSSubConst appends max(a - v, 0) with a broadcast scalar constant.
func BuildSSubConst(bld *Builder, a NetNum, v uint) NetNum {
	s := len(a)
	out := make(NetNum, s)
	cb := bld.Const(v&1 != 0)
	out[0] = bld.Xor(a[0], cb)
	p := bld.AndNot(cb, a[0])
	for i := 1; i < s; i++ {
		bi := bld.Const(v>>uint(i)&1 != 0)
		out[i] = bld.Xor(bld.Xor(a[i], bi), p)
		p = bld.Or(bld.AndNot(bld.Xor(bi, p), a[i]), bld.And(bi, p))
	}
	for i := 0; i < s; i++ {
		out[i] = bld.AndNot(out[i], p)
	}
	return out
}

// BuildMismatch appends the ε-bit character comparison: 1 where x != y.
func BuildMismatch(bld *Builder, x, y NetNum) Node {
	if len(x) != len(y) {
		panic("circuit: character widths differ")
	}
	e := bld.Zero()
	for i := range x {
		e = bld.Or(e, bld.Xor(x[i], y[i]))
	}
	return e
}

// BuildMatching appends C + w(x,y): C+match where e=0, max(C-mismatch,0)
// where e=1.
func BuildMatching(bld *Builder, c NetNum, e Node, par bitslice.Params) NetNum {
	r := BuildAddConst(bld, c, par.Match)
	t := BuildSSubConst(bld, c, par.Mismatch)
	s := len(c)
	out := make(NetNum, s)
	for i := 0; i < s; i++ {
		out[i] = bld.Mux(e, r[i], t[i])
	}
	return out
}

// BuildSWCellNodes appends the full Smith-Waterman cell recurrence
// max(0, up-gap, left-gap, diag + w(x,y)) and returns the output planes.
func BuildSWCellNodes(bld *Builder, up, left, diag NetNum, x, y NetNum, par bitslice.Params) NetNum {
	t := BuildMax(bld, up, left)
	u := BuildSSubConst(bld, t, par.Gap)
	e := BuildMismatch(bld, x, y)
	t2 := BuildMatching(bld, diag, e, par)
	return BuildMax(bld, t2, u)
}

// SWCellCircuit compiles the complete SW cell into a standalone circuit.
// Input layout: up[0..s-1], left[0..s-1], diag[0..s-1], xH, xL, yH, yL.
// Output layout: dst[0..s-1].
func SWCellCircuit(par bitslice.Params, fold bool) (*Circuit, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	bld := NewBuilder()
	bld.Fold = fold
	up := NetNum(bld.Inputs(par.S))
	left := NetNum(bld.Inputs(par.S))
	diag := NetNum(bld.Inputs(par.S))
	xc := NetNum(bld.Inputs(2)) // xL, xH order: [low, high]
	yc := NetNum(bld.Inputs(2))
	out := BuildSWCellNodes(bld, up, left, diag, xc, yc, par)
	return bld.Build(out), nil
}

func mustSame(a, b NetNum) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("circuit: width mismatch %d vs %d", len(a), len(b)))
	}
	return len(a)
}
