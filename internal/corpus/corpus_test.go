package corpus

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/alignsvc"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/swa"
)

// buildSmall builds a deterministic little corpus for round-trip tests.
func buildSmall(t *testing.T, dir string, n int, opts IndexOptions) *Corpus {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	recs := make([]dna.Record, n)
	for i := range recs {
		recs[i] = dna.Record{Name: fmt.Sprintf("seq-%04d", i), Seq: dna.RandSeq(rng, 20+rng.IntN(200))}
	}
	c, err := Build(dir, recs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	built := buildSmall(t, dir, 200, IndexOptions{})
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Len() != built.Len() || opened.K() != built.K() {
		t.Fatalf("opened len=%d k=%d, built len=%d k=%d", opened.Len(), opened.K(), built.Len(), built.K())
	}
	if opened.Fingerprint() != built.Fingerprint() {
		t.Fatalf("fingerprint %s != %s", opened.Fingerprint(), built.Fingerprint())
	}
	if opened.TotalBases() != built.TotalBases() {
		t.Fatalf("total bases %d != %d", opened.TotalBases(), built.TotalBases())
	}
	for id := 0; id < built.Len(); id++ {
		if opened.Name(id) != built.Name(id) || !opened.Seq(id).Equal(built.Seq(id)) {
			t.Fatalf("sequence %d differs after reopen", id)
		}
	}
	if !reflect.DeepEqual(opened.postings, built.postings) {
		t.Fatal("posting lists differ after reopen")
	}
}

func TestBuilderRejects(t *testing.T) {
	if _, err := NewBuilder(t.TempDir(), IndexOptions{K: 1}); err == nil {
		t.Error("k=1: want error")
	}
	if _, err := NewBuilder(t.TempDir(), IndexOptions{K: 11}); err == nil {
		t.Error("k=11: want error")
	}
	dir := t.TempDir()
	b, err := NewBuilder(dir, IndexOptions{MaxSeqLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add("long", dna.RandSeq(rand.New(rand.NewPCG(3, 3)), 9)); err == nil {
		t.Error("over MaxSeqLen: want error")
	}
	if _, err := b.Commit(); err == nil {
		t.Error("commit after sticky error: want error")
	}
	b2, _ := NewBuilder(t.TempDir(), IndexOptions{})
	if _, err := b2.Commit(); err == nil {
		t.Error("empty commit: want error")
	}
	buildSmall(t, dir+"/idx", 3, IndexOptions{})
	if _, err := NewBuilder(dir+"/idx", IndexOptions{}); err == nil {
		t.Error("rebuilding over an existing index: want error")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	flip := func(t *testing.T, path string, off int) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off = len(raw) + off
		}
		raw[off] ^= 0x01
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name   string
		damage func(t *testing.T, dir string)
	}{
		{"postings-bitflip", func(t *testing.T, dir string) { flip(t, filepath.Join(dir, "postings.log"), 40) }},
		{"segment-bitflip", func(t *testing.T, dir string) {
			segs, _ := filepath.Glob(filepath.Join(dir, "seqs-*.log"))
			if len(segs) == 0 {
				t.Fatal("no segments")
			}
			flip(t, segs[0], 30)
		}},
		{"manifest-fingerprint", func(t *testing.T, dir string) {
			path := filepath.Join(dir, "manifest.json")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one hex digit of the fingerprint value.
			i := len(raw) - 1
			for ; i > 0; i-- {
				if raw[i] == '"' {
					break
				}
			}
			raw[i-1] = '0' + ('9' - raw[i-1]) // deterministic different digit
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-segment", func(t *testing.T, dir string) {
			segs, _ := filepath.Glob(filepath.Join(dir, "seqs-*.log"))
			st, err := os.Stat(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(segs[0], st.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			buildSmall(t, dir, 50, IndexOptions{})
			tc.damage(t, dir)
			if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open after damage: err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestOpenMissingManifest(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("open of empty dir: want error")
	}
}

func TestTopKHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(200)
		k := 1 + rng.IntN(20)
		all := make([]Hit, n)
		heap := newTopK(k)
		for i := range all {
			all[i] = Hit{ID: i, Score: rng.IntN(30)} // dense scores force ties
			heap.push(all[i])
		}
		want := RankHits(all, k)
		if got := heap.ranked(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: heap %v, sort %v", trial, got, want)
		}
	}
}

func TestPrefilterBypasses(t *testing.T) {
	c := buildSmall(t, t.TempDir(), 30, IndexOptions{})
	short := c.Prefilter(dna.MustParse("ACG"), Params{}) // shorter than k=6
	if short.Prefiltered || len(short.IDs) != c.Len() {
		t.Errorf("short query: %+v, want full bypass", short)
	}
	off := c.Prefilter(dna.RandSeq(rand.New(rand.NewPCG(4, 4)), 40), Params{MinKmerHits: -1})
	if off.Prefiltered || len(off.IDs) != c.Len() {
		t.Errorf("disabled prefilter: %+v, want full bypass", off)
	}
}

// stripedSearcher builds a Searcher on the exact striped backend.
func stripedSearcher(t *testing.T, c *Corpus, reg *obs.Registry) *Searcher {
	t.Helper()
	be, err := alignsvc.NewBackend(alignsvc.BackendStriped, pipeline.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewSearcher(c, be, reg)
}

// TestSearchOracle100k is the acceptance oracle: over a ≥100k-sequence
// synthetic corpus with planted homologs, the prefiltered top-K must be
// identical to brute-force SW over every sequence, and the prefilter
// must pass under 20% of the corpus at the default k.
func TestSearchOracle100k(t *testing.T) {
	const (
		seqs   = 100_000
		seqLen = 128
		qLen   = 64
		plants = 40
		topK   = 10
	)
	rng := rand.New(rand.NewPCG(42, 7))
	q := dna.RandSeq(rng, qLen)
	mut := dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01}

	b, err := NewBuilder(t.TempDir(), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plantAt := map[int]bool{}
	for len(plantAt) < plants {
		plantAt[rng.IntN(seqs)] = true
	}
	for i := 0; i < seqs; i++ {
		y := dna.RandSeq(rng, seqLen)
		if plantAt[i] {
			cp := mut.Mutate(rng, q)
			if len(cp) > seqLen {
				cp = cp[:seqLen]
			}
			copy(y[rng.IntN(seqLen-len(cp)+1):], cp)
		}
		if err := b.Add(fmt.Sprintf("ref-%06d", i), y); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	s := stripedSearcher(t, c, obs.NewRegistry())
	ctx := context.Background()

	brute, err := s.Search(ctx, q, Params{TopK: topK, MinKmerHits: -1, MaxEdits: -1})
	if err != nil {
		t.Fatal(err)
	}
	if brute.Stats.Candidates != seqs || brute.Stats.Prefiltered {
		t.Fatalf("brute-force stats: %+v, want full scan", brute.Stats)
	}
	filtered, err := s.Search(ctx, q, Params{TopK: topK})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(filtered.Hits, brute.Hits) {
		t.Errorf("prefiltered top-%d differs from brute force:\n  filtered: %v\n  brute:    %v",
			topK, filtered.Hits, brute.Hits)
	}
	st := filtered.Stats
	if !st.Prefiltered || st.Candidates == 0 {
		t.Fatalf("prefilter did not engage: %+v", st)
	}
	if st.PassRate >= 0.20 {
		t.Errorf("prefilter pass rate %.3f, want < 0.20", st.PassRate)
	}
	if st.Cells >= st.BruteCells {
		t.Errorf("prefilter saved nothing: cells %d, brute %d", st.Cells, st.BruteCells)
	}
	if st.Scores.N != st.Candidates {
		t.Errorf("score summary over %d samples, want %d", st.Scores.N, st.Candidates)
	}

	// Independent score check: every reported hit re-scored by the
	// scalar reference.
	for _, h := range filtered.Hits {
		if want := swa.Score(q, c.Seq(h.ID), swa.PaperScoring); h.Score != want {
			t.Errorf("hit %d (%s): score %d, want %d", h.ID, h.Name, h.Score, want)
		}
	}
	// The plants dominate the ranking by construction.
	for _, h := range filtered.Hits {
		if !plantAt[h.ID] {
			t.Errorf("hit %d is not a planted homolog (score %d)", h.ID, h.Score)
		}
	}
}

// TestChunkedMergeMatchesSearch proves the per-chunk top-K merge used by
// search jobs reproduces an uninterrupted search exactly.
func TestChunkedMergeMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	b, err := NewBuilder(t.TempDir(), IndexOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := dna.RandSeq(rng, 48)
	mut := dna.MutationModel{SubRate: 0.08, InsRate: 0.02, DelRate: 0.02}
	for i := 0; i < 3000; i++ {
		y := dna.RandSeq(rng, 100)
		if i%150 == 0 {
			cp := mut.Mutate(rng, q)
			if len(cp) > 100 {
				cp = cp[:100]
			}
			copy(y[rng.IntN(100-len(cp)+1):], cp)
		}
		if err := b.Add(fmt.Sprintf("m-%04d", i), y); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Commit()
	if err != nil {
		t.Fatal(err)
	}
	s := stripedSearcher(t, c, nil)
	ctx := context.Background()
	p := Params{TopK: 7}
	full, err := s.Search(ctx, q, p)
	if err != nil {
		t.Fatal(err)
	}
	cand := c.Prefilter(q, p)
	for _, chunk := range []int{1, 64, 257, 3000, 5000} {
		var union []Hit
		for lo := 0; lo < c.Len(); lo += chunk {
			hits, _, err := s.ScoreRange(ctx, q, cand.IDs, lo, min(lo+chunk, c.Len()), p.TopK)
			if err != nil {
				t.Fatal(err)
			}
			union = append(union, hits...)
		}
		if got := RankHits(union, p.TopK); !reflect.DeepEqual(got, full.Hits) {
			t.Errorf("chunk size %d: merged %v, full %v", chunk, got, full.Hits)
		}
	}
}

func TestRegistry(t *testing.T) {
	c := buildSmall(t, t.TempDir(), 10, IndexOptions{})
	s := stripedSearcher(t, c, nil)
	r := NewRegistry()
	if err := r.Add("", c, s); err == nil {
		t.Error("empty mount name: want error")
	}
	if err := r.Add("ref", c, s); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("ref", c, s); err == nil {
		t.Error("duplicate mount: want error")
	}
	if err := r.Add("other", c, s); err != nil {
		t.Fatal(err)
	}
	h, ok := r.Get("ref")
	if !ok || h.Corpus != c || h.Searcher != s || h.Name != "ref" {
		t.Fatalf("Get: %+v ok=%v", h, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get of unknown mount succeeded")
	}
	want := []string{"other", "ref"}
	if got := r.Names(); !reflect.DeepEqual(got, want) || r.Len() != 2 {
		t.Errorf("Names() = %v len=%d, want %v len=2", got, r.Len(), want)
	}
	if !sort.StringsAreSorted(r.Names()) {
		t.Error("Names() not sorted")
	}
}

func TestEncodeDecodeIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 30; trial++ {
		n := rng.IntN(100)
		ids := make([]int32, 0, n)
		next := int32(0)
		for len(ids) < n {
			next += int32(1 + rng.IntN(50))
			ids = append(ids, next)
		}
		if trial%3 == 0 && len(ids) > 0 {
			ids[0] = 0 // exercise the first-ID-zero path
		}
		got, err := decodeIDs(encodeIDs(ids), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) == 0 {
			if len(got) != 0 {
				t.Fatalf("empty round-trip returned %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("round-trip %v != %v", got, ids)
		}
	}
	if _, err := decodeIDs(encodeIDs([]int32{5, 9}), 8); !errors.Is(err, ErrCorrupt) {
		t.Error("out-of-range ID: want ErrCorrupt")
	}
}
