package corpus

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/dna"
)

// ManifestSchema tags manifest.json; Open refuses other schemas.
const ManifestSchema = "repro/corpus-index/v1"

// K-mer length bounds: the posting table is a dense 4^k array, so k is
// capped where that stays small (4^10 entries ≈ 1M lists).
const (
	minK = 2
	maxK = 10
)

// minBucket is the smallest length bucket; shorter sequences share it.
const minBucket = 16

// ErrCorrupt is the sentinel wrapped by every index decode failure, so
// callers can tell corruption apart from I/O errors with errors.Is.
var ErrCorrupt = errors.New("corpus: corrupt index")

// DefaultK is the posting-list k-mer length Build uses when
// IndexOptions.K is zero.
const DefaultK = 6

// IndexOptions tunes Build.
type IndexOptions struct {
	// K is the k-mer length of the posting lists (default DefaultK,
	// range 2-10). Smaller k admits more candidates; the selectivity
	// math is laid out in DESIGN.md §16.
	K int
	// MaxSeqLen rejects longer reference sequences at ingest
	// (default 1 MiB of bases).
	MaxSeqLen int
}

func (o IndexOptions) withDefaults() IndexOptions {
	if o.K == 0 {
		o.K = DefaultK
	}
	if o.MaxSeqLen <= 0 {
		o.MaxSeqLen = 1 << 20
	}
	return o
}

// manifest is the commit point of an index directory.
type manifest struct {
	Schema      string `json:"schema"`
	K           int    `json:"k"`
	Seqs        int    `json:"seqs"`
	Buckets     []int  `json:"buckets"`
	MaxSeqLen   int    `json:"max_seq_len"`
	TotalBases  int64  `json:"total_bases"`
	Fingerprint string `json:"fingerprint"`
}

// seqRecord is one sequence line in a segment file.
type seqRecord struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Seq  string `json:"seq"`
}

// postingRecord is one k-mer line in postings.log. IDs holds the
// ascending sequence IDs as base64-wrapped varint deltas.
type postingRecord struct {
	Kmer int    `json:"kmer"`
	IDs  string `json:"ids"`
}

// bucketFor returns the length bucket (smallest power of two ≥ n,
// minimum minBucket) a sequence of n bases lands in.
func bucketFor(n int) int {
	b := minBucket
	for b < n {
		b <<= 1
	}
	return b
}

// segmentFile names the segment holding one length bucket.
func segmentFile(bucket int) string { return fmt.Sprintf("seqs-%08d.log", bucket) }

// encodeLine renders one CRC-checked line (the jobstore WAL idiom).
func encodeLine(payload []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(payload) + 10)
	fmt.Fprintf(&b, "%08x ", crc32.ChecksumIEEE(payload))
	b.Write(payload)
	b.WriteByte('\n')
	return b.Bytes()
}

// decodeLine verifies one line's CRC and returns the payload bytes.
func decodeLine(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("%w: short or malformed line header", ErrCorrupt)
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return nil, fmt.Errorf("%w: bad CRC hex: %v", ErrCorrupt, err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: CRC mismatch: header %08x, payload %08x", ErrCorrupt, sum, got)
	}
	return payload, nil
}

// encodeIDs delta-varint-encodes an ascending ID list and base64-wraps it.
func encodeIDs(ids []int32) string {
	buf := make([]byte, 0, len(ids)+8)
	var tmp [binary.MaxVarintLen64]byte
	prev := int32(0)
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id-prev))
		buf = append(buf, tmp[:n]...)
		prev = id
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeIDs inverts encodeIDs, validating ascending order and the ID range.
func decodeIDs(s string, seqs int) ([]int32, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: bad posting base64: %v", ErrCorrupt, err)
	}
	var ids []int32
	prev := int32(-1)
	for len(raw) > 0 {
		d, n := binary.Uvarint(raw)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad posting varint", ErrCorrupt)
		}
		raw = raw[n:]
		var id int32
		if prev < 0 {
			id = int32(d)
		} else {
			id = prev + int32(d)
			if d == 0 {
				return nil, fmt.Errorf("%w: posting IDs not strictly ascending", ErrCorrupt)
			}
		}
		if id < 0 || int(id) >= seqs {
			return nil, fmt.Errorf("%w: posting ID %d out of range [0,%d)", ErrCorrupt, id, seqs)
		}
		ids = append(ids, id)
		prev = id
	}
	return ids, nil
}

// fingerprint hashes every name and sequence in ID order; it is the
// identity a search job pins in its WAL record so a resume against a
// rebuilt (different) corpus fails instead of silently mixing results.
func fingerprint(names []string, seqs []dna.Seq) string {
	h := crc32.NewIEEE()
	for i, name := range names {
		io.WriteString(h, name)
		h.Write([]byte{0})
		io.WriteString(h, seqs[i].String())
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// Corpus is an opened index: the sequences, their k-mer posting lists
// and the manifest identity, all memory-resident. Read-only and safe
// for concurrent use.
type Corpus struct {
	dir        string
	k          int
	names      []string
	seqs       []dna.Seq
	postings   [][]int32
	totalBases int64
	maxLen     int
	print      string
}

// Dir returns the index directory the corpus was opened from.
func (c *Corpus) Dir() string { return c.dir }

// K returns the index's k-mer length.
func (c *Corpus) K() int { return c.k }

// Len returns the number of reference sequences.
func (c *Corpus) Len() int { return len(c.seqs) }

// TotalBases returns the summed length of every reference sequence —
// the denominator of the prefilter's cell-savings accounting.
func (c *Corpus) TotalBases() int64 { return c.totalBases }

// Fingerprint returns the content hash recorded in the manifest.
func (c *Corpus) Fingerprint() string { return c.print }

// Name returns the name of sequence id.
func (c *Corpus) Name(id int) string { return c.names[id] }

// Seq returns sequence id. The slice is shared; callers must not mutate.
func (c *Corpus) Seq(id int) dna.Seq { return c.seqs[id] }

// SeqLen returns the length of sequence id.
func (c *Corpus) SeqLen(id int) int { return len(c.seqs[id]) }

// Builder accumulates reference sequences and commits them as an index
// directory. Add every sequence, then Commit exactly once.
type Builder struct {
	dir   string
	opts  IndexOptions
	names []string
	seqs  []dna.Seq
	err   error
}

// NewBuilder starts an index build into dir (created if missing; must
// not already hold a manifest).
func NewBuilder(dir string, opts IndexOptions) (*Builder, error) {
	opts = opts.withDefaults()
	if opts.K < minK || opts.K > maxK {
		return nil, fmt.Errorf("corpus: k must be %d..%d, got %d", minK, maxK, opts.K)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return nil, fmt.Errorf("corpus: %s already holds an index", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: create dir: %w", err)
	}
	return &Builder{dir: dir, opts: opts}, nil
}

// Add ingests one reference sequence. Errors are sticky and re-reported
// by Commit, so bulk loops may defer checking.
func (b *Builder) Add(name string, seq dna.Seq) error {
	if b.err != nil {
		return b.err
	}
	switch {
	case len(seq) == 0:
		b.err = fmt.Errorf("corpus: sequence %q is empty", name)
	case len(seq) > b.opts.MaxSeqLen:
		b.err = fmt.Errorf("corpus: sequence %q has %d bases, cap %d", name, len(seq), b.opts.MaxSeqLen)
	default:
		b.names = append(b.names, name)
		b.seqs = append(b.seqs, seq)
	}
	return b.err
}

// Commit writes the segments, the posting lists and finally the
// manifest (the commit point), fsyncing files and directory so a
// crash mid-build never yields a half-index that Open accepts.
func (b *Builder) Commit() (*Corpus, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.seqs) == 0 {
		return nil, errors.New("corpus: no sequences added")
	}

	// Segments, one file per occupied length bucket, records in ID order.
	byBucket := map[int][]int{}
	var totalBases int64
	maxLen := 0
	for id, s := range b.seqs {
		bk := bucketFor(len(s))
		byBucket[bk] = append(byBucket[bk], id)
		totalBases += int64(len(s))
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	buckets := make([]int, 0, len(byBucket))
	for bk := range byBucket {
		buckets = append(buckets, bk)
	}
	sort.Ints(buckets)
	for _, bk := range buckets {
		if err := b.writeSegment(bk, byBucket[bk]); err != nil {
			return nil, err
		}
	}

	postings, err := buildPostings(b.opts.K, b.seqs)
	if err != nil {
		return nil, err
	}
	if err := b.writePostings(postings); err != nil {
		return nil, err
	}

	man := manifest{
		Schema:      ManifestSchema,
		K:           b.opts.K,
		Seqs:        len(b.seqs),
		Buckets:     buckets,
		MaxSeqLen:   b.opts.MaxSeqLen,
		TotalBases:  totalBases,
		Fingerprint: fingerprint(b.names, b.seqs),
	}
	if err := writeFileSync(filepath.Join(b.dir, "manifest.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	}); err != nil {
		return nil, err
	}
	if err := fsyncDir(b.dir); err != nil {
		return nil, err
	}
	return &Corpus{
		dir:        b.dir,
		k:          b.opts.K,
		names:      b.names,
		seqs:       b.seqs,
		postings:   postings,
		totalBases: totalBases,
		maxLen:     maxLen,
		print:      man.Fingerprint,
	}, nil
}

// writeSegment writes one bucket's sequences as CRC lines.
func (b *Builder) writeSegment(bucket int, ids []int) error {
	return writeFileSync(filepath.Join(b.dir, segmentFile(bucket)), func(w io.Writer) error {
		for _, id := range ids {
			payload, err := json.Marshal(seqRecord{ID: id, Name: b.names[id], Seq: b.seqs[id].String()})
			if err != nil {
				return err
			}
			if _, err := w.Write(encodeLine(payload)); err != nil {
				return err
			}
		}
		return nil
	})
}

// writePostings writes the non-empty posting lists as CRC lines.
func (b *Builder) writePostings(postings [][]int32) error {
	return writeFileSync(filepath.Join(b.dir, "postings.log"), func(w io.Writer) error {
		for kmer, ids := range postings {
			if len(ids) == 0 {
				continue
			}
			payload, err := json.Marshal(postingRecord{Kmer: kmer, IDs: encodeIDs(ids)})
			if err != nil {
				return err
			}
			if _, err := w.Write(encodeLine(payload)); err != nil {
				return err
			}
		}
		return nil
	})
}

// buildPostings computes the dense posting table: postings[code] lists
// the ascending IDs of sequences containing k-mer code. A stamp array
// deduplicates within one sequence, so each ID appears at most once per
// list no matter how often the k-mer repeats.
func buildPostings(k int, seqs []dna.Seq) ([][]int32, error) {
	table := make([][]int32, 1<<(2*uint(k)))
	stamp := make([]int32, len(table))
	for i := range stamp {
		stamp[i] = -1
	}
	for id, s := range seqs {
		if id > 1<<30 {
			return nil, fmt.Errorf("corpus: too many sequences (%d)", id)
		}
		forEachKmer(k, s, func(code int) {
			if stamp[code] != int32(id) {
				stamp[code] = int32(id)
				table[code] = append(table[code], int32(id))
			}
		})
	}
	return table, nil
}

// forEachKmer calls fn with the rolling 2-bit code of every k-mer of s.
func forEachKmer(k int, s dna.Seq, fn func(code int)) {
	if len(s) < k {
		return
	}
	mask := 1<<(2*uint(k)) - 1
	code := 0
	for i, b := range s {
		code = (code<<2 | int(b&3)) & mask
		if i >= k-1 {
			fn(code)
		}
	}
}

// writeFileSync writes a file through fill and fsyncs it before close.
func writeFileSync(path string, fill func(io.Writer) error) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("corpus: create %s: %w", filepath.Base(path), err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = fill(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("corpus: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// fsyncDir makes fresh directory entries durable (the jobstore idiom:
// file fsync alone does not persist the entry of a newly created file).
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Build is the convenience wrapper: ingest records and commit in one call.
func Build(dir string, recs []dna.Record, opts IndexOptions) (*Corpus, error) {
	b, err := NewBuilder(dir, opts)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := b.Add(r.Name, r.Seq); err != nil {
			return nil, err
		}
	}
	return b.Commit()
}

// Open loads an index directory: manifest, every segment, the posting
// lists — verifying CRCs line by line, the ID space (dense, no gaps, no
// duplicates), the posting invariants and finally the fingerprint
// against the manifest. Any mismatch fails with a typed error wrapping
// ErrCorrupt rather than serving a silently wrong corpus.
func Open(dir string) (*Corpus, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("corpus: read manifest: %w", err)
	}
	var man manifest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&man); err != nil {
		return nil, fmt.Errorf("%w: bad manifest: %v", ErrCorrupt, err)
	}
	if man.Schema != ManifestSchema {
		return nil, fmt.Errorf("corpus: manifest schema %q, want %q", man.Schema, ManifestSchema)
	}
	if man.K < minK || man.K > maxK || man.Seqs <= 0 {
		return nil, fmt.Errorf("%w: manifest k=%d seqs=%d out of range", ErrCorrupt, man.K, man.Seqs)
	}

	c := &Corpus{
		dir:   dir,
		k:     man.K,
		names: make([]string, man.Seqs),
		seqs:  make([]dna.Seq, man.Seqs),
		print: man.Fingerprint,
	}
	seen := 0
	for _, bk := range man.Buckets {
		err := readLines(filepath.Join(dir, segmentFile(bk)), func(payload []byte) error {
			var rec seqRecord
			d := json.NewDecoder(bytes.NewReader(payload))
			d.DisallowUnknownFields()
			if err := d.Decode(&rec); err != nil {
				return fmt.Errorf("%w: bad sequence record: %v", ErrCorrupt, err)
			}
			if rec.ID < 0 || rec.ID >= man.Seqs {
				return fmt.Errorf("%w: sequence ID %d out of range [0,%d)", ErrCorrupt, rec.ID, man.Seqs)
			}
			if c.seqs[rec.ID] != nil {
				return fmt.Errorf("%w: duplicate sequence ID %d", ErrCorrupt, rec.ID)
			}
			s, err := dna.Parse(rec.Seq)
			if err != nil {
				return fmt.Errorf("%w: sequence %d: %v", ErrCorrupt, rec.ID, err)
			}
			if len(s) == 0 || len(s) > bk {
				return fmt.Errorf("%w: sequence %d has %d bases in bucket %d", ErrCorrupt, rec.ID, len(s), bk)
			}
			c.names[rec.ID] = rec.Name
			c.seqs[rec.ID] = s
			c.totalBases += int64(len(s))
			if len(s) > c.maxLen {
				c.maxLen = len(s)
			}
			seen++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if seen != man.Seqs {
		return nil, fmt.Errorf("%w: manifest says %d sequences, segments hold %d", ErrCorrupt, man.Seqs, seen)
	}
	if man.TotalBases != c.totalBases {
		return nil, fmt.Errorf("%w: manifest says %d bases, segments hold %d", ErrCorrupt, man.TotalBases, c.totalBases)
	}
	if got := fingerprint(c.names, c.seqs); got != man.Fingerprint {
		return nil, fmt.Errorf("%w: fingerprint %s, manifest says %s", ErrCorrupt, got, man.Fingerprint)
	}

	c.postings = make([][]int32, 1<<(2*uint(man.K)))
	err = readLines(filepath.Join(dir, "postings.log"), func(payload []byte) error {
		var rec postingRecord
		d := json.NewDecoder(bytes.NewReader(payload))
		d.DisallowUnknownFields()
		if err := d.Decode(&rec); err != nil {
			return fmt.Errorf("%w: bad posting record: %v", ErrCorrupt, err)
		}
		if rec.Kmer < 0 || rec.Kmer >= len(c.postings) {
			return fmt.Errorf("%w: k-mer code %d out of range [0,%d)", ErrCorrupt, rec.Kmer, len(c.postings))
		}
		if c.postings[rec.Kmer] != nil {
			return fmt.Errorf("%w: duplicate posting list for k-mer %d", ErrCorrupt, rec.Kmer)
		}
		ids, err := decodeIDs(rec.IDs, man.Seqs)
		if err != nil {
			return err
		}
		c.postings[rec.Kmer] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// readLines streams a CRC-lines file through fn, payload by payload.
func readLines(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("corpus: open %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return nil
		}
		if err == io.EOF {
			return fmt.Errorf("%w: torn line at end of %s", ErrCorrupt, filepath.Base(path))
		}
		if err != nil {
			return fmt.Errorf("corpus: read %s: %w", filepath.Base(path), err)
		}
		payload, err := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			return fmt.Errorf("%s: %w", filepath.Base(path), err)
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}
