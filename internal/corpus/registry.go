package corpus

import (
	"fmt"
	"sort"
	"sync"
)

// Handle is one mounted corpus: the opened index plus the searcher that
// serves queries against it.
type Handle struct {
	// Name is the mount name clients address the corpus by.
	Name string
	// Corpus is the opened index.
	Corpus *Corpus
	// Searcher answers queries (corpus + backend + metrics).
	Searcher *Searcher
}

// Registry maps mount names to corpora, shared by the /search route,
// the search job runner and /statsz. Safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Handle
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Handle)}
}

// Add mounts a corpus under name. Duplicate names fail.
func (r *Registry) Add(name string, c *Corpus, s *Searcher) error {
	if name == "" {
		return fmt.Errorf("corpus: registry needs a non-empty mount name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("corpus: %q already mounted", name)
	}
	r.m[name] = &Handle{Name: name, Corpus: c, Searcher: s}
	return nil
}

// Get looks a mounted corpus up by name.
func (r *Registry) Get(name string) (*Handle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.m[name]
	return h, ok
}

// Names lists the mounted corpus names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len is the number of mounted corpora.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}
