package corpus

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/alignsvc"
	"repro/internal/bitap"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Params tunes one search. The zero value asks for every default.
type Params struct {
	// TopK is how many ranked hits to return (default 10).
	TopK int
	// MinKmerHits is the stage-one threshold: a sequence must share at
	// least this many of the query's distinct k-mers to become a
	// candidate (default 4, clamped to the query's distinct k-mer
	// count). Negative disables the prefilter entirely — every sequence
	// is scored, the brute-force baseline.
	MinKmerHits int
	// MaxEdits is the stage-two bound: candidates whose bit-parallel
	// semi-global edit distance to the query exceeds it are dropped
	// before SW scoring. 0 means the default (a permissive quarter of
	// the query length); negative disables stage two. Stage two only
	// runs for queries of at most 64 bases (the bitap word width).
	MaxEdits int
}

// Resolved fills the defaults for a query of qLen bases. Callers that
// persist search parameters (the durable job WAL) store the resolved
// form, so a resumed job re-derives the exact same candidate set.
func (p Params) Resolved(qLen int) Params {
	if p.TopK <= 0 {
		p.TopK = 10
	}
	if p.MinKmerHits == 0 {
		p.MinKmerHits = 4
	}
	if p.MaxEdits == 0 {
		p.MaxEdits = qLen / 4
	}
	return p
}

// Candidates is the prefilter's output: the ascending IDs that survive,
// plus where the funnel narrowed.
type Candidates struct {
	// IDs are the surviving sequence IDs, ascending.
	IDs []int32
	// Prefiltered is false when the prefilter was bypassed (disabled, or
	// the query is shorter than the index k) and IDs is every sequence.
	Prefiltered bool
	// KmerCandidates counts stage-one survivors (before bitap refining).
	KmerCandidates int
}

// Prefilter runs the two-stage candidate funnel for a query. It is
// pure: the same corpus, query and params always produce the same IDs,
// which is what lets a resumed search job skip checkpointed chunks.
func (c *Corpus) Prefilter(q dna.Seq, p Params) Candidates {
	p = p.Resolved(len(q))
	if p.MinKmerHits < 0 || len(q) < c.k {
		ids := make([]int32, len(c.seqs))
		for i := range ids {
			ids[i] = int32(i)
		}
		return Candidates{IDs: ids, KmerCandidates: len(ids)}
	}

	// Stage one: count, per sequence, how many of the query's distinct
	// k-mers it contains — one posting-list walk per query k-mer.
	counts := make([]int32, len(c.seqs))
	distinct := 0
	forEachDistinctKmer(c.k, q, func(code int) {
		distinct++
		for _, id := range c.postings[code] {
			counts[id]++
		}
	})
	need := int32(min(p.MinKmerHits, distinct))
	var ids []int32
	for id, n := range counts {
		if n >= need {
			ids = append(ids, int32(id))
		}
	}
	out := Candidates{IDs: ids, Prefiltered: true, KmerCandidates: len(ids)}

	// Stage two: bit-parallel edit-distance refinement, queries ≤ 64.
	if p.MaxEdits >= 0 && len(q) <= 64 && len(ids) > 0 {
		kept := ids[:0]
		for _, id := range ids {
			d, err := bitap.MyersMinDistance(q, c.seqs[id])
			if err != nil || d <= p.MaxEdits {
				kept = append(kept, id)
			}
		}
		out.IDs = kept
	}
	return out
}

// forEachDistinctKmer calls fn once per distinct k-mer code of s.
func forEachDistinctKmer(k int, s dna.Seq, fn func(code int)) {
	seen := make(map[int]struct{}, len(s))
	forEachKmer(k, s, func(code int) {
		if _, dup := seen[code]; !dup {
			seen[code] = struct{}{}
			fn(code)
		}
	})
}

// Hit is one ranked search result.
type Hit struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	Score int    `json:"score"`
}

// better is the ranking order: score descending, then ID ascending —
// a total order, so top-K sets are deterministic and chunk merges are
// byte-identical to uninterrupted runs.
func better(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// topK is a bounded min-heap keeping the k best hits seen: the root is
// the worst retained hit, evicted when a better one arrives. Push is
// O(log k) with no allocation beyond the k-slot backing array.
type topK struct {
	k    int
	heap []Hit
}

func newTopK(k int) *topK { return &topK{k: k, heap: make([]Hit, 0, k)} }

func (t *topK) push(h Hit) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, h)
		// Sift up while the parent is better than the child: the root
		// must be the worst retained hit.
		for i := len(t.heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if better(t.heap[parent], t.heap[i]) {
				t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
				i = parent
				continue
			}
			break
		}
		return
	}
	if !better(h, t.heap[0]) {
		return
	}
	t.heap[0] = h
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(t.heap) && better(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r < len(t.heap) && better(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// ranked drains the heap into best-first order.
func (t *topK) ranked() []Hit {
	out := append([]Hit(nil), t.heap...)
	sort.Slice(out, func(a, b int) bool { return better(out[a], out[b]) })
	return out
}

// RankHits sorts hits best-first (score descending, ID ascending) and
// truncates to k — the merge step for per-chunk top-K checkpoints: the
// union of chunk top-Ks provably contains the global top-K, so sorting
// the union and cutting at k reproduces an uninterrupted search exactly.
func RankHits(hits []Hit, k int) []Hit {
	out := append([]Hit(nil), hits...)
	sort.Slice(out, func(a, b int) bool { return better(out[a], out[b]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Stats describes where one search's funnel narrowed and what the
// scored candidates looked like.
type Stats struct {
	Seqs           int           `json:"seqs"`              // corpus size
	Prefiltered    bool          `json:"prefiltered"`       // false when the prefilter was bypassed
	KmerCandidates int           `json:"kmer_candidates"`   // stage-one survivors
	Candidates     int           `json:"candidates"`        // sequences that reached SW scoring
	PassRate       float64       `json:"pass_rate"`         // Candidates / Seqs
	Cells          int64         `json:"cells"`             // DP cells actually scored
	BruteCells     int64         `json:"brute_cells"`       // cells a full scan would have cost
	Scores         stats.Summary `json:"-"`                 // summary over the scored candidates
	ScoreMin       int           `json:"score_min"`         // flattened Summary for the wire
	ScoreMax       int           `json:"score_max"`         //
	ScoreMean      float64       `json:"score_mean"`        //
	ScoreStd       float64       `json:"score_std"`         //
	Backend        string        `json:"backend,omitempty"` // scoring engine name
}

// Searcher binds a corpus to a scoring backend (and optional metrics
// registry) and answers ranked top-K queries. Safe for concurrent use.
type Searcher struct {
	c   *Corpus
	be  alignsvc.Backend
	reg *obs.Registry
}

// NewSearcher builds a searcher. reg may be nil; when set it receives
// the corpus_prefilter_pass_ratio and corpus_candidates_per_query
// histograms plus the search/candidate/cell counters.
func NewSearcher(c *Corpus, be alignsvc.Backend, reg *obs.Registry) *Searcher {
	if reg != nil {
		reg.Help("corpus_searches_total", "Corpus searches served.")
		reg.Help("corpus_prefilter_pass_ratio", "Fraction of the corpus surviving the prefilter, per query.")
		reg.Help("corpus_candidates_per_query", "Sequences reaching SW scoring, per query.")
		reg.Help("corpus_scored_cells_total", "DP cells scored by corpus searches.")
		reg.Help("corpus_prefilter_saved_cells_total", "DP cells the prefilter avoided versus a full scan.")
	}
	return &Searcher{c: c, be: be, reg: reg}
}

// Corpus returns the searcher's corpus.
func (s *Searcher) Corpus() *Corpus { return s.c }

// Backend returns the scoring engine's name.
func (s *Searcher) Backend() string { return s.be.Name() }

// scoreBatch caps how many candidate pairs go to the backend per call,
// bounding peak memory on huge candidate sets.
const scoreBatch = 1024

// candidateBuckets spans candidates-per-query from a handful to a
// million-sequence full scan.
var candidateBuckets = []float64{1, 5, 25, 100, 500, 2500, 1e4, 5e4, 2.5e5, 1e6}

// score runs SW over the candidates with IDs in [lo, hi) (cand is
// ascending), feeding a bounded top-k heap. observe, when non-nil, sees
// every candidate's score (the stats path).
func (s *Searcher) score(ctx context.Context, q dna.Seq, cand []int32, lo, hi, k int, observe func(int)) ([]Hit, int64, error) {
	from := sort.Search(len(cand), func(i int) bool { return int(cand[i]) >= lo })
	to := sort.Search(len(cand), func(i int) bool { return int(cand[i]) >= hi })
	heap := newTopK(k)
	var cells int64
	for from < to {
		n := min(scoreBatch, to-from)
		batch := cand[from : from+n]
		pairs := make([]dna.Pair, n)
		for i, id := range batch {
			pairs[i] = dna.Pair{X: q, Y: s.c.seqs[id]}
			cells += int64(len(q)) * int64(len(s.c.seqs[id]))
		}
		scores, _, err := s.be.AlignBatch(ctx, pairs, alignsvc.BatchOpts{})
		if err != nil {
			return nil, cells, fmt.Errorf("corpus: score candidates [%d,%d): %w", batch[0], batch[n-1]+1, err)
		}
		for i, sc := range scores {
			id := int(batch[i])
			heap.push(Hit{ID: id, Name: s.c.names[id], Score: sc})
			if observe != nil {
				observe(sc)
			}
		}
		from += n
	}
	return heap.ranked(), cells, nil
}

// ScoreRange scores the candidates whose IDs fall in [lo, hi) and
// returns the top k hits of that range plus the DP cells spent — the
// per-chunk unit of a search job, checkpointed to the WAL.
func (s *Searcher) ScoreRange(ctx context.Context, q dna.Seq, cand []int32, lo, hi, k int) ([]Hit, int64, error) {
	return s.score(ctx, q, cand, lo, hi, k, nil)
}

// Result is one completed search: the ranked hits and the funnel stats.
type Result struct {
	Hits  []Hit `json:"hits"`
	Stats Stats `json:"stats"`
}

// Search runs the full two-stage query path: prefilter, exact SW over
// the survivors, ranked top-K with score statistics.
func (s *Searcher) Search(ctx context.Context, q dna.Seq, p Params) (*Result, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("corpus: empty query")
	}
	p = p.Resolved(len(q))
	cand := s.c.Prefilter(q, p)
	var scored []int
	hits, cells, err := s.score(ctx, q, cand.IDs, 0, s.c.Len(), p.TopK,
		func(sc int) { scored = append(scored, sc) })
	if err != nil {
		return nil, err
	}
	if hits == nil {
		hits = []Hit{} // JSON renders hits as a list, never null
	}
	res := &Result{Hits: hits, Stats: s.buildStats(q, cand, cells, scored)}
	return res, nil
}

// buildStats assembles (and, when a registry is wired, records) the
// funnel statistics of one search.
func (s *Searcher) buildStats(q dna.Seq, cand Candidates, cells int64, scored []int) Stats {
	sum := stats.Summarize(scored)
	brute := int64(len(q)) * s.c.totalBases
	st := Stats{
		Seqs:           s.c.Len(),
		Prefiltered:    cand.Prefiltered,
		KmerCandidates: cand.KmerCandidates,
		Candidates:     len(cand.IDs),
		Cells:          cells,
		BruteCells:     brute,
		Scores:         sum,
		ScoreMin:       sum.Min,
		ScoreMax:       sum.Max,
		ScoreMean:      sum.Mean,
		ScoreStd:       sum.Std,
		Backend:        s.be.Name(),
	}
	if st.Seqs > 0 {
		st.PassRate = float64(st.Candidates) / float64(st.Seqs)
	}
	if s.reg != nil {
		s.reg.Counter("corpus_searches_total").Inc()
		s.reg.Histogram("corpus_prefilter_pass_ratio", obs.RatioBuckets).Observe(st.PassRate)
		s.reg.Histogram("corpus_candidates_per_query", candidateBuckets).Observe(float64(st.Candidates))
		s.reg.Counter("corpus_scored_cells_total").Add(cells)
		if saved := brute - cells; saved > 0 {
			s.reg.Counter("corpus_prefilter_saved_cells_total").Add(saved)
		}
	}
	return st
}
