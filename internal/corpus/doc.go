// Package corpus turns the repository's pair-scoring engines into a
// database-search service: a reference corpus of sequences is ingested
// once into an indexed on-disk store, and each query then runs a
// two-stage path — a cheap bit-parallel prefilter that emits candidate
// IDs, then exact Smith-Waterman scoring of only those candidates —
// producing a ranked top-K hit list with score statistics.
//
// # On-disk layout
//
// An index directory holds three kinds of file, all using the jobstore
// WAL idiom of CRC-checked JSON lines (crc32hex<space>payload\n, CRC-32
// IEEE over the payload bytes):
//
//   - seqs-<bucket>.log — the sequences, segmented by length bucket (the
//     smallest power of two ≥ the sequence length, minimum 16), one
//     record per line carrying the sequence's corpus ID, name and bases.
//   - postings.log — the k-mer posting lists: for every k-mer that
//     occurs in the corpus, the ascending list of sequence IDs that
//     contain it, delta-encoded as varints and base64-wrapped.
//   - manifest.json — the commit point: schema tag, k, sequence count,
//     bucket list and the corpus fingerprint (CRC-32 over every name and
//     sequence in ID order). A directory without a readable manifest is
//     not a corpus; Open re-derives the fingerprint from the segments
//     and refuses a corpus whose content does not match its manifest.
//
// # Query path
//
// Stage one counts, per corpus sequence, how many of the query's
// distinct k-mers occur in it (one posting-list walk per query k-mer)
// and keeps sequences reaching MinKmerHits. Stage two, for queries of
// at most 64 bases, refines survivors with Myers' bit-parallel
// semi-global edit distance (internal/bitap) under a permissive edit
// bound. Only the survivors reach the alignsvc.Backend for exact SW
// scoring into a bounded min-heap of the K best hits. Both stages are
// deterministic in the corpus and query, which is what lets a crashed
// search job recompute its candidate set on resume and skip exactly the
// chunks it already checkpointed.
package corpus
