package tenant

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for bucket and drain-rate tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketRefillAndWait(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(10, 5, clk.now) // 10 tokens/s, burst 5

	for i := 0; i < 5; i++ {
		if ok, _ := b.take(1); !ok {
			t.Fatalf("take %d within burst should pass", i)
		}
	}
	ok, wait := b.take(1)
	if ok {
		t.Fatal("empty bucket should refuse")
	}
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("refill wait = %v, want %v", wait, want)
	}

	clk.advance(250 * time.Millisecond) // 2.5 tokens back
	if ok, _ := b.take(2); !ok {
		t.Fatal("refilled bucket should cover 2 tokens")
	}
	if ok, _ := b.take(1); ok {
		t.Fatal("only 0.5 tokens should remain")
	}

	clk.advance(time.Hour)
	if ok, _ := b.take(5); !ok {
		t.Fatal("long idle should refill to the full burst")
	}
	if ok, _ := b.take(1); ok {
		t.Fatal("burst must cap the refill")
	}
}

func TestBucketNilIsUnlimited(t *testing.T) {
	var b *bucket
	if ok, wait := b.take(1e18); !ok || wait != 0 {
		t.Fatal("nil bucket must always allow")
	}
}

func TestTenantLimitsDefaults(t *testing.T) {
	l := Limits{RPS: 4, CellsPerSec: 100}.withDefaults()
	if l.Weight != 1 {
		t.Fatalf("default weight = %v, want 1", l.Weight)
	}
	if l.Burst != 4 || l.CellBurst != 100 {
		t.Fatalf("default bursts = %v/%v, want 4/100", l.Burst, l.CellBurst)
	}
	if l2 := (Limits{RPS: 0.5}).withDefaults(); l2.Burst != 1 {
		t.Fatalf("sub-1 RPS burst = %v, want min 1", l2.Burst)
	}
}

func testRegistry(t *testing.T, now func() time.Time) *Registry {
	t.Helper()
	r, err := NewRegistry(Config{
		Anonymous: &Limits{Weight: 1},
		Tenants: []TenantConfig{
			{ID: "acme", Key: "sk-acme", Limits: Limits{Weight: 4, RPS: 100, MaxRunningJobs: 2}},
			{ID: "lab", Limits: Limits{Weight: 2, MaxConcurrent: 1, MaxQueued: 3}},
		},
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryResolve(t *testing.T) {
	r := testRegistry(t, nil)

	if tn, err := r.Resolve("sk-acme", ""); err != nil || tn.ID != "acme" {
		t.Fatalf("key resolve = %v, %v", tn, err)
	}
	if tn, err := r.Resolve("sk-acme", "acme"); err != nil || tn.ID != "acme" {
		t.Fatalf("key+matching header = %v, %v", tn, err)
	}
	if _, err := r.Resolve("sk-acme", "lab"); !errors.Is(err, ErrTenantMismatch) {
		t.Fatalf("key+conflicting header err = %v", err)
	}
	if _, err := r.Resolve("sk-bogus", ""); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key err = %v", err)
	}
	if tn, err := r.Resolve("", "lab"); err != nil || tn.ID != "lab" {
		t.Fatalf("keyless ID resolve = %v, %v", tn, err)
	}
	if _, err := r.Resolve("", "acme"); !errors.Is(err, ErrKeyRequired) {
		t.Fatalf("bare ID for keyed tenant err = %v", err)
	}
	if _, err := r.Resolve("", "ghost"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", err)
	}
	if tn, err := r.Resolve("", ""); err != nil || tn.ID != AnonymousID {
		t.Fatalf("no credentials = %v, %v", tn, err)
	}
	if r.MaxRunningJobs("acme") != 2 || r.MaxRunningJobs("ghost") != 0 {
		t.Fatal("MaxRunningJobs lookup broken")
	}
}

func TestRegistryValidation(t *testing.T) {
	bad := []Config{
		{Tenants: []TenantConfig{{ID: ""}}},
		{Tenants: []TenantConfig{{ID: AnonymousID}}},
		{Tenants: []TenantConfig{{ID: "a"}, {ID: "a"}}},
		{Tenants: []TenantConfig{{ID: "a", Key: "k"}, {ID: "b", Key: "k"}}},
		{Tenants: []TenantConfig{{ID: "a", Limits: Limits{Weight: -1}}}},
		// Fractional weights stall the DRR quantum (see validateLimits).
		{Tenants: []TenantConfig{{ID: "a", Limits: Limits{Weight: 0.5}}}},
		{Anonymous: &Limits{Weight: 0.5}},
		{Anonymous: &Limits{RPS: -1}},
		// NUL is the jobs store's key-namespacing separator.
		{Tenants: []TenantConfig{{ID: "a\x00b"}}},
	}
	for i, cfg := range bad {
		if _, err := NewRegistry(cfg, nil); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	cfg := Config{Tenants: []TenantConfig{
		{ID: "acme", Key: "sk-acme", Limits: Limits{Weight: 3, RPS: 10, CellsPerSec: 1e6, MaxRunningJobs: 1}},
	}}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := r.Resolve("sk-acme", "")
	if err != nil || tn.Limits.Weight != 3 || tn.Limits.RPS != 10 {
		t.Fatalf("loaded tenant = %+v, %v", tn, err)
	}
	// The inlined Limits must round-trip through the entry's own object.
	if tn.Limits.CellsPerSec != 1e6 || tn.Limits.MaxRunningJobs != 1 {
		t.Fatalf("inlined limits lost: %+v", tn.Limits)
	}

	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func TestTenantBucketsEnforced(t *testing.T) {
	clk := newFakeClock()
	tn := newTenant("x", "", Limits{RPS: 2, Burst: 2, CellsPerSec: 100, CellBurst: 100}, clk.now)
	if ok, _ := tn.AllowRequest(); !ok {
		t.Fatal("first request within burst")
	}
	if ok, _ := tn.AllowCells(100); !ok {
		t.Fatal("cells within burst")
	}
	if ok, wait := tn.AllowCells(50); ok || wait != 500*time.Millisecond {
		t.Fatalf("drained cell bucket = %v wait %v", ok, wait)
	}
	tn.AllowRequest()
	if ok, wait := tn.AllowRequest(); ok || wait != 500*time.Millisecond {
		t.Fatalf("drained request bucket = %v wait %v", ok, wait)
	}
}
