// Package tenant is the multi-tenancy layer of the serving stack: API-key
// tenants with per-tenant token-bucket rate limits (requests/sec and DP
// cells/sec), per-tenant concurrency caps and queue bounds, and a
// weighted-fair admission scheduler (deficit round-robin) that divides the
// server's execution slots between tenants in proportion to their
// configured weights — so one flooding tenant saturates only its own share
// of the queue and is shed with 429 while everyone else's latency stays
// bounded.
//
// A Registry maps API keys (and bare tenant IDs, for keyless tenants) to
// *Tenant entries loaded from a static JSON config file; requests that
// present no credentials resolve to the built-in anonymous tenant. The
// Scheduler replaces a plain semaphore+queue admission gate: each tenant
// gets its own bounded FIFO of waiters, and freed slots are granted by
// deficit round-robin with quantum equal to the tenant's weight. The
// scheduler also tracks the observed grant rate, from which the server
// derives accurate Retry-After hints for shed responses.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"
)

// AnonymousID is the tenant every uncredentialed request resolves to.
const AnonymousID = "anonymous"

// Limits are the per-tenant quotas. Zero values mean "unlimited" (or, for
// Weight, the default weight 1).
type Limits struct {
	// Weight is the tenant's share of execution slots under contention:
	// a weight-2 tenant is granted twice as many slots per scheduling
	// round as a weight-1 tenant. Must be >= 1 when set (the DRR quantum
	// is one slot, so express ratios by scaling the other tenants up);
	// default 1.
	Weight float64 `json:"weight,omitempty"`
	// RPS caps admission attempts per second through a token bucket;
	// Burst is the bucket depth (default: RPS, min 1). 0 = unlimited.
	RPS   float64 `json:"rps,omitempty"`
	Burst float64 `json:"burst,omitempty"`
	// CellsPerSec caps the DP-matrix work rate (Σ |pattern|·|text| per
	// request) through a second bucket; CellBurst is its depth (default:
	// CellsPerSec). 0 = unlimited.
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	CellBurst   float64 `json:"cell_burst,omitempty"`
	// MaxConcurrent caps how many of the tenant's requests may hold
	// execution slots at once (0 = bounded only by server capacity).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxQueued bounds the tenant's admission wait queue; beyond it the
	// tenant is shed with 429 (0 = the scheduler's default bound).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunningJobs caps the tenant's live (queued or running) async
	// jobs; the cap is enforced against the WAL-backed store, so it
	// survives restarts (0 = unlimited).
	MaxRunningJobs int `json:"max_running_jobs,omitempty"`
}

// withDefaults normalizes the zero values.
func (l Limits) withDefaults() Limits {
	if l.Weight <= 0 {
		l.Weight = 1
	}
	if l.RPS > 0 && l.Burst <= 0 {
		l.Burst = math.Max(l.RPS, 1)
	}
	if l.CellsPerSec > 0 && l.CellBurst <= 0 {
		l.CellBurst = l.CellsPerSec
	}
	return l
}

// Tenant is one resolved principal: identity, credentials and quota state.
// Safe for concurrent use.
type Tenant struct {
	ID     string
	Key    string // API key; "" means the tenant is addressable by bare ID
	Limits Limits

	req   *bucket
	cells *bucket
}

// newTenant builds the runtime state for one configured tenant.
func newTenant(id, key string, l Limits, now func() time.Time) *Tenant {
	l = l.withDefaults()
	return &Tenant{
		ID:     id,
		Key:    key,
		Limits: l,
		req:    newBucket(l.RPS, l.Burst, now),
		cells:  newBucket(l.CellsPerSec, l.CellBurst, now),
	}
}

// AllowRequest spends one request token. When the bucket is empty it
// reports false plus how long until a token is available.
func (t *Tenant) AllowRequest() (bool, time.Duration) { return t.req.take(1) }

// AllowCells spends n DP-cell tokens (the request's Σ |pattern|·|text|).
// When the bucket cannot cover n it reports false plus the refill wait.
func (t *Tenant) AllowCells(n float64) (bool, time.Duration) { return t.cells.take(n) }

// bucket is a classic token bucket: refill on demand at rate/sec up to
// burst. A nil bucket is unlimited.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newBucket(rate, burst float64, now func() time.Time) *bucket {
	if rate <= 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// take spends n tokens, or reports how long until n tokens will have
// refilled. Requests larger than the burst can never pass; they get the
// time to refill n anyway, which the caller clamps to its sane range.
func (b *bucket) take(n float64) (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens = math.Min(b.burst, b.tokens+t.Sub(b.last).Seconds()*b.rate)
	b.last = t
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// Config is the JSON shape of a -tenants file.
type Config struct {
	// Anonymous overrides the limits of the built-in anonymous tenant
	// (default: weight 1, everything unlimited).
	Anonymous *Limits `json:"anonymous,omitempty"`
	// Tenants are the configured principals.
	Tenants []TenantConfig `json:"tenants"`
}

// TenantConfig is one tenant entry in the config file.
type TenantConfig struct {
	// ID is the stable tenant identity (required; "anonymous" is
	// reserved for the built-in default tenant).
	ID string `json:"id"`
	// Key is the API key presented in X-SWA-API-Key. A keyless tenant is
	// addressable by bare ID via X-SWA-Tenant — convenient for trusted
	// internal callers, unsafe for the open internet.
	Key    string `json:"key,omitempty"`
	Limits        // quota fields, inlined into the entry's JSON object
}

// Typed resolution errors, mapped onto 401 by the server.
var (
	// ErrUnknownKey rejects an API key that matches no tenant.
	ErrUnknownKey = errors.New("tenant: unknown API key")
	// ErrUnknownTenant rejects an X-SWA-Tenant naming no tenant.
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	// ErrKeyRequired rejects a bare X-SWA-Tenant for a tenant that has an
	// API key configured (IDs are public, keys are the credential).
	ErrKeyRequired = errors.New("tenant: tenant requires an API key")
	// ErrTenantMismatch rejects a request whose API key and X-SWA-Tenant
	// name different tenants.
	ErrTenantMismatch = errors.New("tenant: API key and tenant header disagree")
)

// Registry resolves request credentials to tenants. Build with NewRegistry
// or LoadFile; a nil-config NewRegistry yields the anonymous-only registry
// that reproduces untenanted behavior exactly.
type Registry struct {
	byID  map[string]*Tenant
	byKey map[string]*Tenant
	anon  *Tenant
}

// validateLimits rejects limit values the scheduler cannot honor: negatives,
// and fractional weights — the DRR quantum is one whole slot, so a weight
// below 1 would never accumulate enough deficit to be granted and its lone
// waiter would stall until its context expired.
func validateLimits(who string, l Limits) error {
	if l.Weight < 0 || l.RPS < 0 || l.Burst < 0 || l.CellsPerSec < 0 || l.CellBurst < 0 ||
		l.MaxConcurrent < 0 || l.MaxQueued < 0 || l.MaxRunningJobs < 0 {
		return fmt.Errorf("tenant: %s has a negative limit", who)
	}
	if l.Weight != 0 && l.Weight < 1 {
		return fmt.Errorf("tenant: %s has fractional weight %v; weights must be >= 1 (scale the other tenants up instead)", who, l.Weight)
	}
	return nil
}

// NewRegistry validates cfg and builds the registry. now is the bucket
// clock seam (nil = time.Now).
func NewRegistry(cfg Config, now func() time.Time) (*Registry, error) {
	anonLimits := Limits{}
	if cfg.Anonymous != nil {
		anonLimits = *cfg.Anonymous
		if err := validateLimits("the anonymous tenant", anonLimits); err != nil {
			return nil, err
		}
	}
	r := &Registry{
		byID:  make(map[string]*Tenant, len(cfg.Tenants)+1),
		byKey: make(map[string]*Tenant, len(cfg.Tenants)),
		anon:  newTenant(AnonymousID, "", anonLimits, now),
	}
	r.byID[AnonymousID] = r.anon
	for i, tc := range cfg.Tenants {
		if tc.ID == "" {
			return nil, fmt.Errorf("tenant: entry %d has no id", i)
		}
		if tc.ID == AnonymousID {
			return nil, fmt.Errorf("tenant: entry %d uses the reserved id %q (set the top-level anonymous limits instead)", i, AnonymousID)
		}
		if strings.ContainsRune(tc.ID, 0) {
			// NUL is the jobs store's key-namespacing separator; a tenant ID
			// carrying one could forge another tenant's namespaced keys.
			return nil, fmt.Errorf("tenant: entry %d id contains a NUL byte", i)
		}
		if _, dup := r.byID[tc.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant id %q", tc.ID)
		}
		if err := validateLimits(fmt.Sprintf("tenant %q", tc.ID), tc.Limits); err != nil {
			return nil, err
		}
		t := newTenant(tc.ID, tc.Key, tc.Limits, now)
		r.byID[tc.ID] = t
		if tc.Key != "" {
			if _, dup := r.byKey[tc.Key]; dup {
				return nil, fmt.Errorf("tenant: tenant %q reuses another tenant's API key", tc.ID)
			}
			r.byKey[tc.Key] = t
		}
	}
	return r, nil
}

// Default returns the anonymous-only registry: every request resolves to
// the unlimited anonymous tenant, reproducing untenanted admission exactly.
func Default() *Registry {
	r, _ := NewRegistry(Config{}, nil)
	return r
}

// LoadFile reads and validates a -tenants JSON config file.
func LoadFile(path string) (*Registry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("tenant: parse %s: %w", path, err)
	}
	return NewRegistry(cfg, nil)
}

// Resolve maps request credentials to a tenant: an API key wins (and must
// agree with the tenant header when both are present), a bare tenant ID
// works only for keyless tenants, and no credentials mean anonymous.
func (r *Registry) Resolve(apiKey, id string) (*Tenant, error) {
	if apiKey != "" {
		t, ok := r.byKey[apiKey]
		if !ok {
			return nil, ErrUnknownKey
		}
		if id != "" && id != t.ID {
			return nil, fmt.Errorf("%w: key belongs to %q, header names %q", ErrTenantMismatch, t.ID, id)
		}
		return t, nil
	}
	if id != "" {
		t, ok := r.byID[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
		}
		if t.Key != "" {
			return nil, fmt.Errorf("%w: %q", ErrKeyRequired, id)
		}
		return t, nil
	}
	return r.anon, nil
}

// Get returns the tenant with the given ID, or nil. The anonymous tenant
// answers for both AnonymousID and "".
func (r *Registry) Get(id string) *Tenant {
	if id == "" {
		return r.anon
	}
	return r.byID[id]
}

// Anonymous returns the built-in default tenant.
func (r *Registry) Anonymous() *Tenant { return r.anon }

// Len counts the configured tenants, the anonymous one included.
func (r *Registry) Len() int { return len(r.byID) }

// MaxRunningJobs returns the live-job cap for a tenant ID (0 = unlimited,
// including for unknown IDs — old WAL records may name tenants that have
// since left the config).
func (r *Registry) MaxRunningJobs(id string) int {
	if r == nil {
		return 0
	}
	if t := r.Get(id); t != nil {
		return t.Limits.MaxRunningJobs
	}
	return 0
}
