package tenant

import (
	"context"
	"sync"
	"testing"
	"time"
)

// admitOK admits and fails the test on any non-OK result.
func admitOK(t *testing.T, s *Scheduler, id string) func() {
	t.Helper()
	release, res := s.Admit(context.Background(), id)
	if res != AdmitOK {
		t.Fatalf("Admit(%s) = %v, want AdmitOK", id, res)
	}
	return release
}

func TestSchedulerFastPath(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Capacity: 2})
	r1 := admitOK(t, s, "a")
	r2 := admitOK(t, s, "b")
	if got := s.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	r1()
	r1() // release is idempotent
	r2()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestSchedulerShedsAtTenantBound(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Capacity: 1, DefaultQueue: 2})
	release := admitOK(t, s, "a")
	defer release()

	// Two waiters fit the default bound; the third sheds.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, res := s.Admit(ctx, "a"); res == AdmitOK {
				rel()
			}
		}()
	}
	waitFor(t, func() bool { return s.Queued() == 2 })
	if _, res := s.Admit(context.Background(), "a"); res != AdmitShed {
		t.Fatalf("over-bound Admit = %v, want AdmitShed", res)
	}
	// Another tenant still has its own queue space.
	done := make(chan AdmitResult, 1)
	go func() {
		rel, res := s.Admit(ctx, "b")
		if res == AdmitOK {
			rel()
		}
		done <- res
	}()
	waitFor(t, func() bool { return s.Queued() == 3 })

	cancel()
	wg.Wait()
	if res := <-done; res != AdmitCtxDone {
		t.Fatalf("cancelled waiter = %v, want AdmitCtxDone", res)
	}
	if st := s.Snapshot()["a"]; st.Shed != 1 || st.Cancelled != 2 {
		t.Fatalf("tenant a stats = %+v", st)
	}
}

func TestSchedulerDrainWakesWaiters(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Capacity: 1, DefaultQueue: 8})
	release := admitOK(t, s, "a")

	results := make(chan AdmitResult, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, res := s.Admit(context.Background(), "a")
			results <- res
		}()
	}
	waitFor(t, func() bool { return s.Queued() == 3 })
	s.BeginDrain()
	for i := 0; i < 3; i++ {
		if res := <-results; res != AdmitDraining {
			t.Fatalf("drained waiter = %v, want AdmitDraining", res)
		}
	}
	if _, res := s.Admit(context.Background(), "b"); res != AdmitDraining {
		t.Fatalf("post-drain Admit = %v, want AdmitDraining", res)
	}
	release()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("inflight after drain+release = %d", got)
	}
}

func TestSchedulerPerTenantConcurrencyCap(t *testing.T) {
	reg, err := NewRegistry(Config{Tenants: []TenantConfig{
		{ID: "capped", Limits: Limits{MaxConcurrent: 1}},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(SchedulerConfig{Capacity: 4, DefaultQueue: 8, Registry: reg})

	relCapped := admitOK(t, s, "capped")
	// A second capped request must queue even though slots are free...
	got := make(chan AdmitResult, 1)
	go func() {
		rel, res := s.Admit(context.Background(), "capped")
		if res == AdmitOK {
			rel()
		}
		got <- res
	}()
	waitFor(t, func() bool { return s.Queued() == 1 })
	// ...while another tenant sails straight through the capped one.
	relOther := admitOK(t, s, "other")
	relOther()

	relCapped() // frees the cap; the queued request is granted
	if res := <-got; res != AdmitOK {
		t.Fatalf("queued capped request = %v, want AdmitOK", res)
	}
}

// TestWeightedFairness is the DRR contract: grants out of a saturated
// backlog divide in proportion to weight. Three tenants (weights 1, 2, 4)
// pre-enqueue deep backlogs behind a single held slot; with capacity 1 and
// instant release, grants are strictly serialized, so the composition of
// the first rounds must match quantum=weight exactly.
func TestWeightedFairness(t *testing.T) {
	reg, err := NewRegistry(Config{Tenants: []TenantConfig{
		{ID: "w1", Limits: Limits{Weight: 1}},
		{ID: "w2", Limits: Limits{Weight: 2}},
		{ID: "w4", Limits: Limits{Weight: 4}},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(SchedulerConfig{Capacity: 1, DefaultQueue: 64, Registry: reg})

	const perTenant = 30
	var (
		wg      sync.WaitGroup
		orderMu sync.Mutex
		order   []string
	)

	// Hold the only slot, then back-log every tenant's queue.
	release := admitOK(t, s, "w1")
	for _, id := range []string{"w1", "w2", "w4"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				rel, res := s.Admit(context.Background(), id)
				if res != AdmitOK {
					return
				}
				orderMu.Lock()
				order = append(order, id)
				orderMu.Unlock()
				rel()
			}(id)
		}
	}
	waitFor(t, func() bool { return s.Queued() == 3*perTenant })
	release() // open the floodgates; grants now drain one at a time
	wg.Wait()

	if len(order) != 3*perTenant {
		t.Fatalf("granted %d of %d waiters", len(order), 3*perTenant)
	}
	// Examine the first 28 grants — four full DRR rounds (1+2+4 = 7 per
	// round), before any tenant's backlog runs dry.
	counts := map[string]int{}
	for _, id := range order[:28] {
		counts[id]++
	}
	c1, c2, c4 := counts["w1"], counts["w2"], counts["w4"]
	if c1 != 4 || c2 != 8 || c4 != 16 {
		t.Fatalf("first 4 rounds: w1=%d w2=%d w4=%d, want 4/8/16", c1, c2, c4)
	}
}

// TestRetryAfterHint is the satellite regression: the shed hint must come
// from the observed grant rate and the live backlog, clamped to [1s, 30s].
func TestRetryAfterHint(t *testing.T) {
	clk := newFakeClock()
	s := NewScheduler(SchedulerConfig{Capacity: 1, DefaultQueue: 64, now: clk.now})

	// No grants observed yet: the configured fallback, clamped.
	if got := s.RetryAfterHint(5 * time.Second); got != 5*time.Second {
		t.Fatalf("fallback hint = %v, want 5s", got)
	}
	if got := s.RetryAfterHint(0); got != time.Second {
		t.Fatalf("fallback hint clamps up: %v, want 1s", got)
	}
	if got := s.RetryAfterHint(10 * time.Minute); got != 30*time.Second {
		t.Fatalf("fallback hint clamps down: %v, want 30s", got)
	}

	// Simulate a steady drain: 2 grants/sec for 8 seconds.
	for i := 0; i < 16; i++ {
		rel := admitOK(t, s, "a")
		rel()
		clk.advance(500 * time.Millisecond)
	}
	// Queue up a backlog of 7 behind a slot holder.
	hold := admitOK(t, s, "a")
	defer hold()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, res := s.Admit(ctx, "a"); res == AdmitOK {
				rel()
			}
		}()
	}
	waitFor(t, func() bool { return s.Queued() == 7 })

	// (7 backlog + 1) / 2 grants-per-sec = 4s.
	got := s.RetryAfterHint(time.Second)
	if got < 3*time.Second || got > 5*time.Second {
		t.Fatalf("derived hint = %v, want ≈4s", got)
	}
	cancel()
	wg.Wait()

	// A huge synthetic backlog still clamps to 30s.
	s2 := NewScheduler(SchedulerConfig{Capacity: 1, now: clk.now})
	for i := 0; i < 16; i++ {
		rel := admitOK(t, s2, "a")
		rel()
		clk.advance(10 * time.Second)
	}
	s2.mu.Lock()
	s2.queued = 1 << 20
	hint := time.Duration(float64(s2.queued+1) / s2.drainRateLocked() * float64(time.Second))
	s2.queued = 0
	s2.mu.Unlock()
	if clampRetryAfter(hint) != 30*time.Second {
		t.Fatalf("huge backlog must clamp to 30s, got %v", clampRetryAfter(hint))
	}
}

// TestCancelDrainRaceAccounting races a queued waiter's context expiry
// against BeginDrain: BeginDrain pops the waiter and settles live/queued,
// and the waiter's ctx.Done branch must not decrement them again — the
// double-decrement drove Queued() negative and made Drain (which polls
// Queued()==0) spin for the whole grace period. Racy by construction; the
// tenant-chaos CI job runs it under -race.
func TestCancelDrainRaceAccounting(t *testing.T) {
	for i := 0; i < 200; i++ {
		s := NewScheduler(SchedulerConfig{Capacity: 1, DefaultQueue: 8})
		hold := admitOK(t, s, "a")
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan AdmitResult, 1)
		go func() {
			rel, res := s.Admit(ctx, "a")
			if res == AdmitOK {
				rel()
			}
			got <- res
		}()
		waitFor(t, func() bool { return s.Queued() == 1 })
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); s.BeginDrain() }()
		wg.Wait()
		if res := <-got; res != AdmitDraining && res != AdmitCtxDone {
			t.Fatalf("iteration %d: Admit = %v, want AdmitDraining or AdmitCtxDone", i, res)
		}
		if q := s.Queued(); q != 0 {
			t.Fatalf("iteration %d: Queued() = %d after cancel+drain race, want 0", i, q)
		}
		hold()
		if n := s.InFlight(); n != 0 {
			t.Fatalf("iteration %d: InFlight() = %d, want 0", i, n)
		}
	}
}

// TestSub1WeightNeverStalls: NewRegistry rejects fractional weights, and
// the scheduler additionally clamps a sub-1 weight from a hand-built
// registry to the default 1, so a lone waiter is still granted instead of
// waiting forever for a whole DRR quantum that never accumulates.
func TestSub1WeightNeverStalls(t *testing.T) {
	reg := &Registry{byID: map[string]*Tenant{
		"frac": newTenant("frac", "", Limits{Weight: 0.5}, nil),
	}}
	s := NewScheduler(SchedulerConfig{Capacity: 1, DefaultQueue: 4, Registry: reg})
	hold := admitOK(t, s, "other")
	got := make(chan AdmitResult, 1)
	go func() {
		rel, res := s.Admit(context.Background(), "frac")
		if res == AdmitOK {
			rel()
		}
		got <- res
	}()
	waitFor(t, func() bool { return s.Queued() == 1 })
	hold()
	if res := <-got; res != AdmitOK {
		t.Fatalf("weight-0.5 waiter = %v, want AdmitOK", res)
	}
	if s.InFlight() != 0 || s.Queued() != 0 {
		t.Fatalf("scheduler not drained: inflight=%d queued=%d", s.InFlight(), s.Queued())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
