// The weighted-fair admission scheduler: per-tenant bounded FIFO wait
// queues in front of a shared pool of execution slots, drained by deficit
// round-robin (DRR) with quantum equal to the tenant's weight. Under
// contention each tenant's grant rate converges to weight/Σweights of the
// slot throughput, so a tenant flooding its own queue cannot starve the
// others; it only fills its own bounded queue and is shed.

package tenant

import (
	"context"
	"sync"
	"time"
)

// AdmitResult says how an Admit call ended.
type AdmitResult int

const (
	// AdmitOK granted an execution slot; call the release function.
	AdmitOK AdmitResult = iota
	// AdmitShed means the tenant's wait queue is full: shed with 429.
	AdmitShed
	// AdmitDraining means the scheduler is shutting down: 503.
	AdmitDraining
	// AdmitCtxDone means the caller's context expired while queued.
	AdmitCtxDone
)

// SchedulerConfig tunes NewScheduler.
type SchedulerConfig struct {
	// Capacity is the shared execution-slot pool (the server's
	// MaxInFlight). Required, > 0.
	Capacity int
	// DefaultQueue bounds the wait queue of tenants whose Limits leave
	// MaxQueued zero (default: Capacity).
	DefaultQueue int
	// Registry supplies per-tenant weights, concurrency caps and queue
	// bounds. Unknown tenant IDs get weight-1 defaults; a nil registry
	// makes every tenant a default tenant.
	Registry *Registry

	// now replaces the grant-rate clock in tests.
	now func() time.Time
}

// waiter is one queued admission request.
type waiter struct {
	ch       chan struct{} // closed on grant or drain
	q        *tq
	granted  bool
	gone     bool // cancelled; skipped by dispatch
	draining bool
}

// tq is one tenant's admission queue plus its DRR and accounting state.
// All fields are guarded by the scheduler mutex.
type tq struct {
	id      string
	weight  float64
	maxConc int // 0 = uncapped
	bound   int

	deficit  float64
	waiters  []*waiter
	live     int // non-gone waiters (the queue-depth bound applies to these)
	inflight int
	inRing   bool

	admitted, shed, cancelled, drained int64
	rateLimited, quotaRejected         int64
	waitTotal                          time.Duration
}

// Scheduler is the weighted-fair admission gate. Create with NewScheduler;
// every method is safe for concurrent use.
type Scheduler struct {
	mu       sync.Mutex
	capacity int
	defQueue int
	reg      *Registry
	now      func() time.Time

	queues   map[string]*tq
	ring     []*tq // active (non-empty) queues in round-robin order
	ringIdx  int
	inflight int
	queued   int // live waiters across all tenants
	draining bool

	// grants is a ring of recent grant times; the observed drain rate
	// derived from it feeds Retry-After hints on shed responses.
	grants    []time.Time
	grantIdx  int
	grantFull bool
}

// NewScheduler builds the scheduler around the registry's weights.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.DefaultQueue <= 0 {
		cfg.DefaultQueue = cfg.Capacity
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Scheduler{
		capacity: cfg.Capacity,
		defQueue: cfg.DefaultQueue,
		reg:      cfg.Registry,
		now:      cfg.now,
		queues:   make(map[string]*tq),
		grants:   make([]time.Time, 64),
	}
}

// queue returns (creating on first use) the tenant's queue state.
func (s *Scheduler) queue(id string) *tq {
	if q, ok := s.queues[id]; ok {
		return q
	}
	q := &tq{id: id, weight: 1, bound: s.defQueue}
	if s.reg != nil {
		if t := s.reg.Get(id); t != nil {
			l := t.Limits
			// Weights below 1 never accumulate a whole quantum and would
			// stall the queue; NewRegistry rejects them, and this guard
			// keeps a hand-built registry from wedging dispatch anyway.
			if l.Weight >= 1 {
				q.weight = l.Weight
			}
			q.maxConc = l.MaxConcurrent
			if l.MaxQueued > 0 {
				q.bound = l.MaxQueued
			}
		}
	}
	s.queues[id] = q
	return q
}

func (q *tq) atCap() bool { return q.maxConc > 0 && q.inflight >= q.maxConc }

// popWaiter removes and returns the tenant's oldest live waiter (dropping
// cancelled ones it walks past), or nil.
func (q *tq) popWaiter() *waiter {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.gone {
			continue
		}
		return w
	}
	return nil
}

// Admit asks for an execution slot on behalf of tenant id. It returns
// immediately with a slot when one is free and nobody is queued; otherwise
// it waits in the tenant's bounded FIFO until the DRR scheduler grants a
// slot, the context expires, or the scheduler drains. On AdmitOK the
// returned release function (idempotent) frees the slot.
func (s *Scheduler) Admit(ctx context.Context, id string) (release func(), res AdmitResult) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, AdmitDraining
	}
	q := s.queue(id)
	// Fast path: a free slot with an empty house means no queued tenant
	// can be overtaken by granting immediately.
	if s.inflight < s.capacity && s.queued == 0 && !q.atCap() {
		s.grantLocked(q)
		s.mu.Unlock()
		return s.releaseFunc(q), AdmitOK
	}
	if q.live >= q.bound {
		q.shed++
		s.mu.Unlock()
		return nil, AdmitShed
	}
	w := &waiter{ch: make(chan struct{}), q: q}
	q.waiters = append(q.waiters, w)
	q.live++
	s.queued++
	s.ringAdd(q)
	begin := s.now()
	// A slot may be free even though waiters exist (e.g. every earlier
	// waiter's tenant is at its concurrency cap) — let DRR decide.
	s.dispatch()
	s.mu.Unlock()

	select {
	case <-w.ch:
		s.mu.Lock()
		q.waitTotal += s.now().Sub(begin)
		s.mu.Unlock()
		if w.draining {
			return nil, AdmitDraining
		}
		return s.releaseFunc(q), AdmitOK
	case <-ctx.Done():
		s.mu.Lock()
		defer s.mu.Unlock()
		if w.granted {
			// Lost the race against dispatch: hand the slot straight back.
			s.inflight--
			q.inflight--
			q.cancelled++
			s.dispatch()
			return nil, AdmitCtxDone
		}
		if w.draining {
			// Lost the race against BeginDrain, which already popped this
			// waiter and settled the live/queued accounting — decrementing
			// again would drive the counts negative and stall Drain.
			return nil, AdmitDraining
		}
		w.gone = true
		q.live--
		s.queued--
		q.cancelled++
		return nil, AdmitCtxDone
	}
}

// grantLocked books a slot for tenant q and records the grant time.
func (s *Scheduler) grantLocked(q *tq) {
	s.inflight++
	q.inflight++
	q.admitted++
	s.grants[s.grantIdx] = s.now()
	s.grantIdx++
	if s.grantIdx == len(s.grants) {
		s.grantIdx = 0
		s.grantFull = true
	}
}

// releaseFunc frees q's slot once, waking the DRR dispatcher.
func (s *Scheduler) releaseFunc(q *tq) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inflight--
			q.inflight--
			s.dispatch()
			s.mu.Unlock()
		})
	}
}

// ringAdd puts q into the active ring if it is not there already.
func (s *Scheduler) ringAdd(q *tq) {
	if !q.inRing {
		q.inRing = true
		s.ring = append(s.ring, q)
	}
}

// ringRemove drops the queue at index i, keeping ringIdx pointed at the
// element that follows it.
func (s *Scheduler) ringRemove(i int) {
	s.ring[i].inRing = false
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	if s.ringIdx > i {
		s.ringIdx--
	}
}

// dispatch grants free slots to queued waiters by deficit round-robin:
// each visited tenant's deficit grows by its weight, and it may take one
// slot per whole unit of deficit. Tenants at their concurrency cap keep
// their place (and their deficit) until a slot of theirs frees; emptied
// queues leave the ring with their deficit reset, so fairness is measured
// only across backlogged tenants, and idle tenants accumulate no credit.
func (s *Scheduler) dispatch() {
	for s.inflight < s.capacity && s.queued > 0 {
		granted := false
		for pass := len(s.ring); pass > 0 && s.inflight < s.capacity; pass-- {
			if len(s.ring) == 0 {
				break
			}
			if s.ringIdx >= len(s.ring) {
				s.ringIdx = 0
			}
			q := s.ring[s.ringIdx]
			if q.live == 0 {
				q.deficit = 0
				s.ringRemove(s.ringIdx)
				continue
			}
			if q.atCap() {
				s.ringIdx++
				continue
			}
			// One quantum per round: only top up once the previous quantum
			// is spent. A slot-at-a-time drain interrupts the grant loop at
			// capacity, and the next dispatch must resume THIS queue with
			// its remaining deficit, not re-credit it — otherwise every
			// release visits a fresh queue and DRR degrades to round-robin.
			if q.deficit < 1 {
				q.deficit += q.weight
			}
			for q.deficit >= 1 && q.live > 0 && !q.atCap() && s.inflight < s.capacity {
				w := q.popWaiter()
				if w == nil {
					break
				}
				q.deficit--
				q.live--
				s.queued--
				w.granted = true
				s.grantLocked(q)
				granted = true
				close(w.ch)
			}
			switch {
			case q.live == 0:
				q.deficit = 0
				s.ringRemove(s.ringIdx)
			case q.deficit < 1 || q.atCap():
				s.ringIdx++
			default:
				// Deficit and backlog remain: capacity ran out mid-quantum.
				// Keep ringIdx here so the next free slot comes back.
			}
		}
		if !granted {
			return // everyone left is capped (or the ring is empty)
		}
	}
}

// BeginDrain wakes every queued waiter with AdmitDraining and makes every
// future Admit fail fast the same way. In-flight slots release normally.
// Safe to call more than once.
func (s *Scheduler) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	for _, q := range s.queues {
		for {
			w := q.popWaiter()
			if w == nil {
				break
			}
			q.live--
			s.queued--
			q.drained++
			w.draining = true
			close(w.ch)
		}
		q.deficit = 0
		q.inRing = false
	}
	s.ring = nil
	s.ringIdx = 0
}

// InFlight counts the slots currently held.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Queued counts the live waiters across all tenants.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// NoteRateLimited counts a token-bucket rejection against the tenant, so
// /statsz shows rate-limit pressure next to queue pressure.
func (s *Scheduler) NoteRateLimited(id string) {
	s.mu.Lock()
	s.queue(id).rateLimited++
	s.mu.Unlock()
}

// NoteQuotaRejected counts a running-job-quota rejection for the tenant.
func (s *Scheduler) NoteQuotaRejected(id string) {
	s.mu.Lock()
	s.queue(id).quotaRejected++
	s.mu.Unlock()
}

// drainRateLocked estimates granted slots per second from the recent-grant
// ring. It needs at least 8 grants over a measurable interval; otherwise 0.
func (s *Scheduler) drainRateLocked() float64 {
	n := s.grantIdx
	oldest := 0
	if s.grantFull {
		n = len(s.grants)
		oldest = s.grantIdx
	}
	if n < 8 {
		return 0
	}
	span := s.now().Sub(s.grants[oldest])
	if span <= 0 {
		return 0
	}
	return float64(n) / span.Seconds()
}

// RetryAfterHint derives the 429 Retry-After for a shed request: the time
// for the observed grant rate to work through the current backlog, clamped
// to [1s, 30s]. With no observed drain yet it returns the fallback.
func (s *Scheduler) RetryAfterHint(fallback time.Duration) time.Duration {
	s.mu.Lock()
	rate := s.drainRateLocked()
	backlog := s.queued
	s.mu.Unlock()
	if rate <= 0 {
		return clampRetryAfter(fallback)
	}
	return clampRetryAfter(time.Duration(float64(backlog+1) / rate * float64(time.Second)))
}

// clampRetryAfter bounds any Retry-After hint to [1s, 30s]: never tell a
// client "0" (it would hot-loop) and never park it for minutes on a
// transient spike.
func clampRetryAfter(d time.Duration) time.Duration {
	return min(max(d, time.Second), 30*time.Second)
}

// ClampRetryAfter bounds a Retry-After hint to the scheduler's sane range
// [1s, 30s] — for callers deriving hints from token-bucket refill times.
func ClampRetryAfter(d time.Duration) time.Duration { return clampRetryAfter(d) }

// Stats is the per-tenant admission snapshot for /statsz.
type Stats struct {
	Weight        float64 `json:"weight"`
	Admitted      int64   `json:"admitted"`       // slots granted
	Shed          int64   `json:"shed"`           // queue-full 429s
	RateLimited   int64   `json:"rate_limited"`   // token-bucket 429s
	QuotaRejected int64   `json:"quota_rejected"` // running-job-cap 429s
	Cancelled     int64   `json:"cancelled"`      // waiters whose context expired
	Drained       int64   `json:"drained"`        // waiters flushed by BeginDrain
	InFlight      int64   `json:"in_flight"`      // slots held right now
	Queued        int64   `json:"queued"`         // waiters right now
	MaxQueued     int64   `json:"max_queued"`     // the tenant's queue bound
	AvgWaitMS     float64 `json:"avg_wait_ms"`    // mean queue wait of granted waiters
}

// Snapshot returns the per-tenant admission stats, keyed by tenant ID.
func (s *Scheduler) Snapshot() map[string]Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Stats, len(s.queues))
	for id, q := range s.queues {
		st := Stats{
			Weight:        q.weight,
			Admitted:      q.admitted,
			Shed:          q.shed,
			RateLimited:   q.rateLimited,
			QuotaRejected: q.quotaRejected,
			Cancelled:     q.cancelled,
			Drained:       q.drained,
			InFlight:      int64(q.inflight),
			Queued:        int64(q.live),
			MaxQueued:     int64(q.bound),
		}
		if waited := q.admitted; waited > 0 {
			st.AvgWaitMS = float64(q.waitTotal) / float64(waited) / float64(time.Millisecond)
		}
		out[id] = st
	}
	return out
}
