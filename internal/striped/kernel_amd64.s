#include "textflag.h"

// func stripedSW2(arena, prof, vh, y0, y1 *byte, n, blockSize int64)
//
// The SSE2 two-problem striped Smith–Waterman column pass: 16 full-range
// 8-bit lanes per XMM register (PADDUSB/PSUBUSB/PMAXUB saturate in
// hardware), two independent (x, y) problems interleaved per call to hide
// instruction latency. The lane wrap is resolved per Snytsar's lazy-F
// elimination: four static decayed prefix-max steps over the wrapped F,
// then one corrective sweep, skipped when the settled F is all zero.
//
// arena layout (16-byte lanes, filled by the Go wrapper):
//   0 bias | 16 gap | 32 dec1 | 48 dec2 | 64 dec4 | 80 dec8
//   96 vm0 | 112 vm1 | 128 ovf0 | 144 ovf1   (state: loaded AND stored, so
//   a long text can be fed in chunks with a context poll between calls)
// prof: per base c (0..3) and problem k (0..1), the striped query profile
//   block at (c*2+k)*blockSize; blockSize = segLen*16.
// vh: problem 0's H row at 0, problem 1's at blockSize (zeroed by caller
//   before the first chunk, preserved across chunks).
// ovf tracks the running max of every pre-bias add: a 255 lane means some
//   add may have saturated and the problem must be re-scored wider.
//
// X0 f0, X1 f1, X2 prev0, X3 prev1, X4 vm0, X5 vm1, X6 ovf0, X7 ovf1,
// X8 bias, X9 gap, X10-X13 temps.
TEXT ·stripedSW2(SB), NOSPLIT, $0-56
	MOVQ arena+0(FP), DI
	MOVQ prof+8(FP), SI
	MOVQ vh+16(FP), R8
	MOVQ y0+24(FP), R9
	MOVQ y1+32(FP), R15
	MOVQ n+40(FP), R10
	MOVQ blockSize+48(FP), R11

	MOVOU 0(DI), X8
	MOVOU 16(DI), X9
	MOVOU 96(DI), X4
	MOVOU 112(DI), X5
	MOVOU 128(DI), X6
	MOVOU 144(DI), X7

	LEAQ (R8)(R11*1), R12    // vh1 base
	MOVQ $0, BX              // column j

colloop:
	CMPQ BX, R10
	JGE  done

	// prev_k = vh_k[last segment] shifted one lane (the lane wrap of the
	// diagonal term entering segment 0).
	MOVOU -16(R8)(R11*1), X2
	MOVOU -16(R12)(R11*1), X3
	PSLLO $1, X2
	PSLLO $1, X3

	// profile blocks for this column: c0 = y0[j], c1 = y1[j]
	MOVBLZX (R9)(BX*1), CX
	SHLQ $1, CX
	IMULQ R11, CX
	LEAQ (SI)(CX*1), R13     // problem 0 block
	MOVBLZX (R15)(BX*1), CX
	SHLQ $1, CX
	IMULQ R11, CX
	LEAQ 0(SI)(CX*1), R14
	ADDQ R11, R14            // problem 1 block

	PXOR X0, X0
	PXOR X1, X1
	MOVQ $0, DX              // segment byte offset

segloop:
	// problem 0: h = max(prev + p - bias, H_left - gap, f); f' = h - gap
	MOVOU (R13)(DX*1), X10   // p
	PADDUSB X2, X10          // t = prev + p (saturating)
	PMAXUB X10, X6           // overflow tracker: max t ever seen
	PSUBUSB X8, X10          // diagonal term
	MOVOU (R8)(DX*1), X2     // H_left (previous column; becomes next prev)
	MOVOA X2, X11
	PSUBUSB X9, X11          // left term
	PMAXUB X11, X10
	PMAXUB X0, X10           // up term (running F chain)
	PMAXUB X10, X4           // vm0
	MOVOU X10, (R8)(DX*1)
	MOVOA X10, X0
	PSUBUSB X9, X0           // f = h - gap

	// problem 1, identical shape
	MOVOU (R14)(DX*1), X12
	PADDUSB X3, X12
	PMAXUB X12, X7
	PSUBUSB X8, X12
	MOVOU (R12)(DX*1), X3
	MOVOA X3, X13
	PSUBUSB X9, X13
	PMAXUB X13, X12
	PMAXUB X1, X12
	PMAXUB X12, X5
	MOVOU X12, (R12)(DX*1)
	MOVOA X12, X1
	PSUBUSB X9, X1

	ADDQ $16, DX
	CMPQ DX, R11
	JLT  segloop

	// Lane wrap: shift F one lane, then four decayed prefix-max steps
	// (decay vectors clamp at 255, so an over-decayed step is a no-op).
	PSLLO $1, X0
	PSLLO $1, X1

	MOVOA X0, X10
	MOVOA X1, X11
	PSLLO $1, X10
	PSLLO $1, X11
	PSUBUSB 32(DI), X10
	PSUBUSB 32(DI), X11
	PMAXUB X10, X0
	PMAXUB X11, X1

	MOVOA X0, X10
	MOVOA X1, X11
	PSLLO $2, X10
	PSLLO $2, X11
	PSUBUSB 48(DI), X10
	PSUBUSB 48(DI), X11
	PMAXUB X10, X0
	PMAXUB X11, X1

	MOVOA X0, X10
	MOVOA X1, X11
	PSLLO $4, X10
	PSLLO $4, X11
	PSUBUSB 64(DI), X10
	PSUBUSB 64(DI), X11
	PMAXUB X10, X0
	PMAXUB X11, X1

	MOVOA X0, X10
	MOVOA X1, X11
	PSLLO $8, X10
	PSLLO $8, X11
	PSUBUSB 80(DI), X10
	PSUBUSB 80(DI), X11
	PMAXUB X10, X0
	PMAXUB X11, X1

	// One corrective sweep, only if some settled F lane is nonzero.
	MOVOA X0, X10
	POR X1, X10
	PXOR X11, X11
	PCMPEQB X11, X10
	PMOVMSKB X10, AX
	CMPL AX, $0xFFFF
	JEQ  nextcol

	MOVQ $0, DX
sweeploop:
	MOVOU (R8)(DX*1), X10
	PMAXUB X0, X10
	MOVOU X10, (R8)(DX*1)
	MOVOA X10, X0
	PSUBUSB X9, X0

	MOVOU (R12)(DX*1), X11
	PMAXUB X1, X11
	MOVOU X11, (R12)(DX*1)
	MOVOA X11, X1
	PSUBUSB X9, X1

	ADDQ $16, DX
	CMPQ DX, R11
	JLT  sweeploop

nextcol:
	INCQ BX
	JMP  colloop

done:
	MOVOU X4, 96(DI)
	MOVOU X5, 112(DI)
	MOVOU X6, 128(DI)
	MOVOU X7, 144(DI)
	RET
