//go:build amd64

package striped

import (
	"context"

	"repro/internal/dna"
	"repro/internal/swa"
)

// haveAsm selects the SSE2 assembly kernel. SSE2 is part of the amd64
// baseline, so no runtime feature detection is needed.
const haveAsm = true

// asmCap is the largest per-cost value the assembly kernel's full-range
// 8-bit lanes accept without the constant fills clamping: the overflow
// tracker flags saturated adds at 255, so 254 is the effective score
// ceiling and 255-range costs are representable exactly.
const asmCap = 254

// stripedSW2 is implemented in kernel_amd64.s. It advances both problems'
// striped rows across n text columns; vm/ovf state round-trips through the
// arena so the engine can feed a long text in chunks.
//
//go:noescape
func stripedSW2(arena, prof, vh, y0, y1 *byte, n, blockSize int64)

const (
	arenaSize = 160
	asmLanes  = 16
)

// runAsmPair scores two pairs with the two-problem SSE2 kernel. The
// problems share segLen (from the longer query; shorter ones pad with a
// zero profile, which is exact) and must have equal text lengths — the
// engine's grouping guarantees that, duplicating problem 0 otherwise.
func (e *Engine) runAsmPair(ctx context.Context, sr *scratch, p0, p1 dna.Pair, sc swa.Scoring) (s0, s1 int, ovf0, ovf1 bool, err error) {
	m := max(len(p0.X), len(p1.X))
	segLen := (m + asmLanes - 1) / asmLanes
	bs := segLen * asmLanes

	sr.arena = growBytes(sr.arena, arenaSize)
	fill16 := func(off, v int) {
		b := byte(min(v, 255))
		for i := 0; i < 16; i++ {
			sr.arena[off+i] = b
		}
	}
	fill16(0, sc.Mismatch)
	fill16(16, sc.Gap)
	segGap := segLen * sc.Gap
	fill16(32, segGap)
	fill16(48, segGap*2)
	fill16(64, segGap*4)
	fill16(80, segGap*8)
	for i := 96; i < arenaSize; i++ {
		sr.arena[i] = 0
	}

	sr.prof2 = growBytes(sr.prof2, 4*2*bs)
	for i := range sr.prof2 {
		sr.prof2[i] = 0
	}
	pv := byte(sc.Match + sc.Mismatch)
	for k, x := range [2]dna.Seq{p0.X, p1.X} {
		for q, b := range x {
			// query position q = v*segLen + s lands at byte s*16+v of the
			// (base, problem) block.
			v := q / segLen
			s := q % segLen
			sr.prof2[(int(b)*2+k)*bs+s*asmLanes+v] = pv
		}
	}

	sr.vh = growBytes(sr.vh, 2*bs)
	for i := range sr.vh {
		sr.vh[i] = 0
	}
	sr.yb = copySeq(sr.yb, p0.Y)
	sr.yb2 = copySeq(sr.yb2, p1.Y)

	n := len(sr.yb)
	chunk := max(1, pollCells/(2*bs))
	for at := 0; at < n; at += chunk {
		if err := ctx.Err(); err != nil {
			return 0, 0, false, false, err
		}
		cols := min(chunk, n-at)
		stripedSW2(&sr.arena[0], &sr.prof2[0], &sr.vh[0],
			&sr.yb[at], &sr.yb2[at], int64(cols), int64(bs))
	}

	best := func(off int) int {
		b := 0
		for i := 0; i < 16; i++ {
			if v := int(sr.arena[off+i]); v > b {
				b = v
			}
		}
		return b
	}
	s0, s1 = best(96), best(112)
	ovf0 = best(128) == 255
	ovf1 = best(144) == 255
	return s0, s1, ovf0, ovf1, nil
}
