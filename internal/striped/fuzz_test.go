package striped

import (
	"context"
	"testing"

	"repro/internal/dna"
	"repro/internal/swa"
)

// FuzzStripedVsReference feeds arbitrary byte strings and scoring
// parameters through every kernel path (assembly where available, the
// portable 8-bit lanes, and the forced 16-bit lanes) and demands
// byte-identical scores versus the scalar swa.Score reference. Large Match
// values let the fuzzer reach the overflow re-pass and the scalar fallback
// with short inputs.
func FuzzStripedVsReference(f *testing.F) {
	f.Add([]byte("ACGTACGT"), []byte("ACGGT"), 2, 1, 1)
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), 7, 1, 1) // 8-bit overflow
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), []byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), 1000, 1, 1)            // 16-bit overflow
	f.Add([]byte{}, []byte("T"), 1, 0, 0)
	f.Add([]byte("G"), []byte{}, 3, 2, 0)

	es := engines()
	f.Fuzz(func(t *testing.T, xb, yb []byte, match, mismatch, gap int) {
		sc := swa.Scoring{Match: match, Mismatch: mismatch, Gap: gap}
		if sc.Validate() != nil {
			t.Skip()
		}
		if match+mismatch > 100_000 || len(xb) > 2048 || len(yb) > 2048 {
			t.Skip() // keep each case fast; huge values add nothing
		}
		toSeq := func(b []byte) dna.Seq {
			s := make(dna.Seq, len(b))
			for i, c := range b {
				s[i] = dna.Base(c % 4)
			}
			return s
		}
		x, y := toSeq(xb), toSeq(yb)
		want := swa.Score(x, y, sc)
		pairs := []dna.Pair{{X: x, Y: y}, {X: x, Y: y}} // two copies exercise asm pairing
		for name, e := range es {
			got, _, err := e.ScoreBatch(context.Background(), pairs, sc)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range pairs {
				if got[i] != want {
					t.Fatalf("%s pair %d: got %d want %d (m=%d n=%d sc=%+v)",
						name, i, got[i], want, len(x), len(y), sc)
				}
			}
		}
	})
}
