// Package striped is the native CPU serving engine: a Farrar-style striped
// Smith–Waterman scorer with a precomputed query profile, saturating
// bit-parallel inner loops and automatic widening on overflow. It exists so
// the alignment service can serve real traffic at wall-clock GCUPS while the
// cudasim/bpbc stack stays the paper-faithful research path.
//
// # Striped layout and the lazy-F loop
//
// The query is split into V vertical stripes ("lanes"): query position
// q = v·segLen + s lives in lane v, segment s, with segLen = ⌈m/V⌉ and the
// tail lanes padded with an all-zero profile (a padded position can never
// beat a real score, so the padding is exact). One pass over a text column
// updates all segments with the diagonal and left terms; the vertical F
// dependency that crosses the lane wrap is resolved afterwards without
// Farrar's data-dependent lazy-F loop, following Snytsar ("De(con)struction
// of the lazy-F loop", PAPERS.md): the wrapped F vector is folded with
// log₂V decayed prefix-max steps (each shift decays by the gap cost it
// skips, saturating at zero), then at most one corrective sweep re-applies
// the settled F — skipped entirely when the wrapped F is already zero,
// which is the common case.
//
// # Kernels and the widening ladder
//
// Three kernels share that design:
//
//   - an SSE2 assembly kernel (amd64) with 16 full-range 8-bit lanes per
//     XMM register, scoring two independent pairs per call to hide latency;
//   - a portable 8-bit kernel packing V=8 lanes into a uint64 with
//     branch-free saturating SWAR arithmetic (values ≤ 0x7f);
//   - a portable 16-bit kernel packing V=4 lanes into a uint64
//     (values ≤ 0x7fff).
//
// Every kernel tracks a sticky overflow accumulator instead of clamping:
// when any lane may have saturated, the whole pair is re-scored by the next
// wider kernel, and past 16 bits by the scalar swa.Score reference. Scores
// are therefore exact by construction on every path; the engine never
// returns a clamped value.
//
// Scratch buffers (profile, H/G rows, text copies) are pooled, so scoring a
// warm batch allocates nothing (see the CI allocation gate).
package striped

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/dna"
	"repro/internal/swa"
)

// Config tunes the engine. The zero value selects the fastest correct path
// for the host.
type Config struct {
	// ForcePortable bypasses the assembly kernel so the portable
	// uint64-SWAR kernels serve even on amd64. Tests use it for
	// cross-architecture parity; production configs leave it false.
	ForcePortable bool
	// ForceWide routes every pair straight to the 16-bit-lane kernel,
	// skipping the 8-bit first pass. Tests use it to exercise the wide
	// kernel on inputs that would otherwise be served at 8 bits.
	ForceWide bool
}

// Stats is a snapshot of the engine's cumulative counters.
type Stats struct {
	// Pairs is how many pairs the engine scored (on any path).
	Pairs int64 `json:"pairs"`
	// KernelCalls counts striped kernel invocations (assembly or portable).
	KernelCalls int64 `json:"kernel_calls"`
	// Overflows counts pairs whose narrow pass may have saturated and was
	// discarded.
	Overflows int64 `json:"overflows"`
	// WideRepasses counts pairs re-scored by the 16-bit kernel after an
	// 8-bit overflow.
	WideRepasses int64 `json:"wide_repasses"`
	// ScalarFallbacks counts pairs served by the scalar swa.Score reference
	// (16-bit overflow, or scoring parameters too large for the lanes).
	ScalarFallbacks int64 `json:"scalar_fallbacks"`
}

// BatchInfo reports what one ScoreBatch call did.
type BatchInfo struct {
	KernelPairs     int // pairs served by a striped kernel
	Overflows       int // narrow passes discarded for possible saturation
	WideRepasses    int // pairs re-scored at 16 bits
	ScalarFallbacks int // pairs served by the scalar reference
}

// Engine is a reusable striped scorer. Create with New; ScoreBatch is safe
// for concurrent use (scratch state is pooled per call).
type Engine struct {
	cfg  Config
	pool sync.Pool

	pairs, kernelCalls, overflows atomic.Int64
	wideRepasses, scalarFallbacks atomic.Int64
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	e.pool.New = func() any { return &scratch{} }
	return e
}

// Stats snapshots the cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Pairs:           e.pairs.Load(),
		KernelCalls:     e.kernelCalls.Load(),
		Overflows:       e.overflows.Load(),
		WideRepasses:    e.wideRepasses.Load(),
		ScalarFallbacks: e.scalarFallbacks.Load(),
	}
}

// ScoreBatch scores every pair exactly, allocating the result slice.
func (e *Engine) ScoreBatch(ctx context.Context, pairs []dna.Pair, sc swa.Scoring) ([]int, BatchInfo, error) {
	dst := make([]int, len(pairs))
	info, err := e.ScoreBatchInto(ctx, dst, pairs, sc)
	if err != nil {
		return nil, info, err
	}
	return dst, info, nil
}

// pollCells bounds how many cells a kernel computes between context polls,
// so a cancelled request aborts within a fraction of a millisecond even on
// a single enormous pair.
const pollCells = 4 << 20

// ScoreBatchInto scores pairs[i] into dst[i]. It allocates nothing in
// steady state (pooled scratch, caller-owned dst) and polls ctx between
// pair groups and between column chunks of large pairs.
func (e *Engine) ScoreBatchInto(ctx context.Context, dst []int, pairs []dna.Pair, sc swa.Scoring) (BatchInfo, error) {
	var info BatchInfo
	if err := sc.Validate(); err != nil {
		return info, err
	}
	if len(dst) != len(pairs) {
		return info, errDstLen(len(dst), len(pairs))
	}
	sr := e.pool.Get().(*scratch)
	defer e.pool.Put(sr)
	err := e.scoreBatch(ctx, sr, dst, pairs, sc, &info)
	e.pairs.Add(int64(len(pairs)))
	e.kernelCalls.Add(int64(info.KernelPairs))
	e.overflows.Add(int64(info.Overflows))
	e.wideRepasses.Add(int64(info.WideRepasses))
	e.scalarFallbacks.Add(int64(info.ScalarFallbacks))
	return info, err
}

// fitsNarrow reports whether the scoring parameters fit the 8-bit lanes of
// the given capacity: the profile entry (match+mismatch) and the gap cost
// must each be representable without clamping.
func fitsNarrow(sc swa.Scoring, lim int) bool {
	return sc.Match+sc.Mismatch <= lim && sc.Gap <= lim
}

// scoreBatch walks the batch, grouping adjacent equal-n pairs for the
// two-problem assembly kernel and widening per pair on overflow.
func (e *Engine) scoreBatch(ctx context.Context, sr *scratch, dst []int, pairs []dna.Pair, sc swa.Scoring, info *BatchInfo) error {
	useAsm := haveAsm && !e.cfg.ForcePortable && !e.cfg.ForceWide && fitsNarrow(sc, asmCap)
	useU8 := !e.cfg.ForceWide && fitsNarrow(sc, cap8)
	useU16 := fitsNarrow(sc, cap16/2)
	for i := 0; i < len(pairs); i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := pairs[i]
		if len(p.X) == 0 || len(p.Y) == 0 {
			dst[i] = 0
			continue
		}
		switch {
		case useAsm:
			// Pair two adjacent problems with equal text length so the
			// kernel's second problem slot does real work; otherwise it
			// re-scores the same pair (correct, half throughput).
			j := i
			if k := i + 1; k < len(pairs) &&
				len(pairs[k].X) > 0 && len(pairs[k].Y) == len(p.Y) {
				j = k
			}
			q := pairs[j]
			s0, s1, ovf0, ovf1, err := e.runAsmPair(ctx, sr, p, q, sc)
			if err != nil {
				return err
			}
			info.KernelPairs++
			if j != i {
				info.KernelPairs++
			}
			if err := e.settle(ctx, sr, dst, i, p, s0, ovf0, sc, useU16, info); err != nil {
				return err
			}
			if j != i {
				if err := e.settle(ctx, sr, dst, j, q, s1, ovf1, sc, useU16, info); err != nil {
					return err
				}
				i = j
			}
		case useU8:
			s, ovf, err := e.runPortable(ctx, sr, p, sc, false)
			if err != nil {
				return err
			}
			info.KernelPairs++
			if err := e.settle(ctx, sr, dst, i, p, s, ovf, sc, useU16, info); err != nil {
				return err
			}
		case useU16:
			s, ovf, err := e.runPortable(ctx, sr, p, sc, true)
			if err != nil {
				return err
			}
			info.KernelPairs++
			if ovf {
				info.Overflows++
				info.ScalarFallbacks++
				dst[i] = swa.Score(p.X, p.Y, sc)
			} else {
				dst[i] = s
			}
		default:
			info.ScalarFallbacks++
			dst[i] = swa.Score(p.X, p.Y, sc)
		}
	}
	return nil
}

// settle commits a narrow-kernel result, or widens: a flagged 8-bit pass is
// discarded and the pair re-scored at 16 bits, and a flagged 16-bit pass by
// the scalar reference. Exactness is unconditional — a flagged pass is
// never trusted.
func (e *Engine) settle(ctx context.Context, sr *scratch, dst []int, i int, p dna.Pair, s int, ovf bool, sc swa.Scoring, useU16 bool, info *BatchInfo) error {
	if !ovf {
		dst[i] = s
		return nil
	}
	info.Overflows++
	if useU16 {
		ws, wovf, err := e.runPortable(ctx, sr, p, sc, true)
		if err != nil {
			return err
		}
		info.KernelPairs++
		info.WideRepasses++
		if !wovf {
			dst[i] = ws
			return nil
		}
		info.Overflows++
	}
	info.ScalarFallbacks++
	dst[i] = swa.Score(p.X, p.Y, sc)
	return nil
}

type dstLenError struct{ got, want int }

func errDstLen(got, want int) error { return &dstLenError{got, want} }

func (e *dstLenError) Error() string {
	return "striped: dst has " + itoa(e.got) + " slots for " + itoa(e.want) + " pairs"
}

// itoa avoids importing fmt on the hot path's error type.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
