package striped

import (
	"context"

	"repro/internal/dna"
	"repro/internal/swa"
)

// The portable kernels pack V saturating lanes into one uint64 and run the
// striped column pass with branch-free SWAR arithmetic. Lane values must
// stay at or below the lane capacity (0x7f for 8-bit lanes, 0x7fff for
// 16-bit): instead of clamping, each add ORs into a sticky overflow
// accumulator whose top lane bits reveal whether any value may have left
// the safe range — in which case the whole pass is discarded and the pair
// re-scored wider. This keeps the saturating subtract at six operations:
//
//	d := (x | hi) - y         // borrow-proof subtract
//	s := d & hi               // per-lane no-borrow flags
//	d & (s - (s >> shift))    // 0x7f.. mask per no-borrow lane, 0 otherwise
//
// and max(x, y) = y + subs(x, y) at seven.
const (
	lo8  = 0x0101010101010101
	hi8  = 0x8080808080808080
	cap8 = 0x7f

	lo16  = 0x0001000100010001
	hi16  = 0x8000800080008000
	cap16 = 0x7fff
)

func subs8(x, y uint64) uint64 {
	d := (x | hi8) - y
	s := d & hi8
	return d & (s - (s >> 7))
}

func max8(x, y uint64) uint64 { return y + subs8(x, y) }

func subs16(x, y uint64) uint64 {
	d := (x | hi16) - y
	s := d & hi16
	return d & (s - (s >> 15))
}

func max16(x, y uint64) uint64 { return y + subs16(x, y) }

// scratch is the pooled per-call state: kernel rows, query profiles and
// byte copies of the texts. Buffers only ever grow.
type scratch struct {
	// portable-kernel state
	prof [4][]uint64 // per-base striped query profile, segLen words each
	vhg  []uint64    // interleaved H and G=subs(H,gap) rows, 2·segLen words
	yb   []byte      // text copy (dna.Base values are already 0..3)

	// assembly-kernel state (amd64)
	arena []byte // constants + outputs, arenaSize bytes
	prof2 []byte // two problems × four bases × segLen×16 bytes
	vh    []byte // two H rows, segLen×16 bytes each
	yb2   []byte // second text copy
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}

func copySeq(dst []byte, s dna.Seq) []byte {
	dst = growBytes(dst, len(s))
	for i, b := range s {
		dst[i] = byte(b)
	}
	return dst
}

// laneKernel is one portable lane-width instantiation: V lanes of `bits`
// bits in a uint64, with a width-specialised column pass (concrete per
// width so the 6-op SWAR primitives inline into the inner loop). The two
// instances below are the "uint64-lane" (8-bit × 8) and "uint16-lane"
// (16-bit × 4) kernels of the engine's widening ladder.
type laneKernel struct {
	lanes, bits int
	lo, hi      uint64
	capv        int
	run         func(sr *scratch, segLen int, y []byte, sc swa.Scoring, vm, ovfAcc uint64) (uint64, uint64)
}

var kern8 = laneKernel{lanes: 8, bits: 8, lo: lo8, hi: hi8, capv: cap8, run: runColumns8}
var kern16 = laneKernel{lanes: 4, bits: 16, lo: lo16, hi: hi16, capv: cap16, run: runColumns16}

// buildProfile fills sr.prof with the striped query profile for x: lane v,
// segment s covers query position v·segLen+s, holding match+mismatch where
// x matches the base and zero elsewhere (zero also pads positions ≥ m,
// which can never beat a real score).
func buildProfile(sr *scratch, k *laneKernel, x dna.Seq, segLen int, sc swa.Scoring) {
	pv := uint64(sc.Match + sc.Mismatch)
	for c := 0; c < 4; c++ {
		p := growU64(sr.prof[c], segLen)
		for s := range p {
			p[s] = 0
		}
		sr.prof[c] = p
	}
	for q, b := range x {
		v := q / segLen
		s := q % segLen
		sr.prof[b][s] |= pv << (uint(v) * uint(k.bits))
	}
}

// runPortable scores one pair with the portable kernel at the requested
// width, returning the score and whether the pass may have saturated. The
// column loop is chunked so ctx is honoured even on a single huge pair.
func (e *Engine) runPortable(ctx context.Context, sr *scratch, p dna.Pair, sc swa.Scoring, wide bool) (score int, ovf bool, err error) {
	k := &kern8
	if wide {
		k = &kern16
	}
	m := len(p.X)
	segLen := (m + k.lanes - 1) / k.lanes
	buildProfile(sr, k, p.X, segLen, sc)
	sr.vhg = growU64(sr.vhg, 2*segLen)
	for i := range sr.vhg {
		sr.vhg[i] = 0
	}
	sr.yb = copySeq(sr.yb, p.Y)

	var vm, ovfAcc uint64
	chunk := max(1, pollCells/(segLen*k.lanes))
	for at := 0; at < len(sr.yb); at += chunk {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		end := min(at+chunk, len(sr.yb))
		vm, ovfAcc = k.run(sr, segLen, sr.yb[at:end], sc, vm, ovfAcc)
	}
	if ovfAcc&k.hi != 0 {
		return 0, true, nil
	}
	mask := uint64(1)<<uint(k.bits) - 1
	for v := 0; v < k.lanes; v++ {
		if s := int(vm >> (uint(v) * uint(k.bits)) & mask); s > score {
			score = s
		}
	}
	return score, false, nil
}

// runColumns8 advances the striped recurrence over one chunk of text
// columns at 8-bit lane width. vhg interleaves H at 2s with
// G = subs(H, gap) at 2s+1: the stored G doubles as the next column's
// "left" term (H ≥ E always, so one gap step from the newest H dominates
// the decayed E chain), which saves a subtract per segment.
//
// runColumns16 is a mechanical copy at 16-bit width — kept concrete
// (rather than dispatching subs/max through function values) so the SWAR
// primitives inline, which is worth ~5× on this loop.
func runColumns8(sr *scratch, segLen int, y []byte, sc swa.Scoring, vm, ovfAcc uint64) (uint64, uint64) {
	biasv := lo8 * uint64(sc.Mismatch)
	gapv := lo8 * uint64(sc.Gap)
	segGap := segLen * sc.Gap
	vhg := sr.vhg
	last := 2 * (segLen - 1)
	for _, c := range y {
		p := sr.prof[c]
		// The diagonal term enters through prev, the previous column's H
		// shifted down one lane (query position q-1 of lane v is position
		// q of lane v-1 at the same segment... i.e. the lane-wrap shift).
		prev := vhg[last] << 8
		var f uint64
		for s := 0; s < segLen; s++ {
			t := prev + p[s]
			ovfAcc |= t
			h := subs8(t, biasv) // diagonal: H(q-1,j-1) + match/-mismatch
			hp := vhg[2*s]
			h = max8(h, vhg[2*s+1]) // left: stored G from column j-1
			h = max8(h, f)          // up: running in-column F chain
			vm = max8(vm, h)
			prev = hp
			f = subs8(h, gapv)
			vhg[2*s] = h
			vhg[2*s+1] = f
		}
		// Lane wrap (lazy-F elimination): fold the wrapped F with decayed
		// prefix-max steps, then at most one corrective sweep — skipped
		// when the settled F is already all zero.
		f <<= 8
		for sh := 1; sh < 8; sh <<= 1 {
			dec := segGap * sh
			if dec >= cap8 {
				break // saturating subtract would zero every lane anyway
			}
			f = max8(f, subs8(f<<(8*uint(sh)), lo8*uint64(dec)))
		}
		if f != 0 {
			for s := 0; s < segLen; s++ {
				h := max8(vhg[2*s], f)
				vhg[2*s] = h
				f = subs8(h, gapv)
				vhg[2*s+1] = f
			}
		}
	}
	return vm, ovfAcc
}

// runColumns16 is runColumns8 at 16-bit lane width; see that function for
// the commentary.
func runColumns16(sr *scratch, segLen int, y []byte, sc swa.Scoring, vm, ovfAcc uint64) (uint64, uint64) {
	biasv := lo16 * uint64(sc.Mismatch)
	gapv := lo16 * uint64(sc.Gap)
	segGap := segLen * sc.Gap
	vhg := sr.vhg
	last := 2 * (segLen - 1)
	for _, c := range y {
		p := sr.prof[c]
		prev := vhg[last] << 16
		var f uint64
		for s := 0; s < segLen; s++ {
			t := prev + p[s]
			ovfAcc |= t
			h := subs16(t, biasv)
			hp := vhg[2*s]
			h = max16(h, vhg[2*s+1])
			h = max16(h, f)
			vm = max16(vm, h)
			prev = hp
			f = subs16(h, gapv)
			vhg[2*s] = h
			vhg[2*s+1] = f
		}
		f <<= 16
		for sh := 1; sh < 4; sh <<= 1 {
			dec := segGap * sh
			if dec >= cap16 {
				break
			}
			f = max16(f, subs16(f<<(16*uint(sh)), lo16*uint64(dec)))
		}
		if f != 0 {
			for s := 0; s < segLen; s++ {
				h := max16(vhg[2*s], f)
				vhg[2*s] = h
				f = subs16(h, gapv)
				vhg[2*s+1] = f
			}
		}
	}
	return vm, ovfAcc
}
