//go:build !amd64

package striped

import (
	"context"

	"repro/internal/dna"
	"repro/internal/swa"
)

// haveAsm is false off amd64: the portable uint64-SWAR kernels serve
// instead (8-bit lanes first, widening to 16-bit on overflow).
const haveAsm = false

const asmCap = 254

// runAsmPair is unreachable when haveAsm is false; the engine never groups
// pairs for it.
func (e *Engine) runAsmPair(ctx context.Context, sr *scratch, p0, p1 dna.Pair, sc swa.Scoring) (s0, s1 int, ovf0, ovf1 bool, err error) {
	panic("striped: assembly kernel unavailable on this architecture")
}
