package striped

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/dna"
	"repro/internal/swa"
)

// engines returns one engine per kernel path. "auto" uses the assembly
// kernel on amd64 and the portable 8-bit kernel elsewhere; the other two
// force the portable kernels so every architecture exercises all of them.
func engines() map[string]*Engine {
	return map[string]*Engine{
		"auto":     New(Config{}),
		"portable": New(Config{ForcePortable: true}),
		"wide":     New(Config{ForceWide: true}),
	}
}

func randSeq(rng *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(rng.IntN(4))
	}
	return s
}

// TestStripedMatchesReference cross-checks every kernel path against the
// scalar swa.Score oracle on randomized batches, including high-identity
// pairs that force 8-bit overflow and the widening re-pass.
func TestStripedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	es := engines()
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.IntN(150)
		n := 1 + rng.IntN(300)
		pairs := make([]dna.Pair, 1+rng.IntN(5))
		for k := range pairs {
			x := randSeq(rng, m)
			nn := n
			if rng.IntN(3) == 0 {
				nn = 1 + rng.IntN(300) // unequal text lengths break asm pairing
			}
			y := randSeq(rng, nn)
			if rng.IntN(20) == 0 {
				y = append(dna.Seq{}, x...) // identical pair: big score, forces overflow
			}
			pairs[k] = dna.Pair{X: x, Y: y}
		}
		sc := swa.Scoring{Match: 1 + rng.IntN(4), Mismatch: rng.IntN(3), Gap: rng.IntN(3)}
		for name, e := range es {
			got, _, err := e.ScoreBatch(context.Background(), pairs, sc)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, p := range pairs {
				if want := swa.Score(p.X, p.Y, sc); got[i] != want {
					t.Fatalf("%s trial %d pair %d (m=%d n=%d sc=%+v): got %d want %d",
						name, trial, i, len(p.X), len(p.Y), sc, got[i], want)
				}
			}
		}
	}
	// The sweep must actually have exercised the widening ladder.
	if st := es["auto"].Stats(); st.Overflows == 0 || st.WideRepasses == 0 {
		t.Fatalf("sweep never overflowed the narrow kernel: %+v", st)
	}
}

// TestOverflowBoundaries pins the widening ladder's trigger points using
// large Match values: a poly-A pair of length L scores exactly L·Match, so
// tiny sequences can straddle each kernel's ceiling deterministically.
func TestOverflowBoundaries(t *testing.T) {
	polyA := func(n int) dna.Seq { return make(dna.Seq, n) }
	cases := []struct {
		name         string
		cfg          Config
		sc           swa.Scoring
		l            int
		wantOverflow bool
		wantScalar   bool
	}{
		// Assembly kernel (amd64 auto path): the conservative overflow
		// tracker flags any add reaching 255, so pin comfortably inside
		// (score 200) and beyond (score 260) the ~254 ceiling.
		{"asm-fits", Config{}, swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}, 100, false, false},
		{"asm-overflow", Config{}, swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}, 130, true, false},
		// Portable 8-bit kernel: lane capacity 0x7f = 127. The overflow
		// check is conservative (flags any add reaching the top bit), so
		// pin well inside and beyond rather than at 127 exactly.
		{"u8-fits", Config{ForcePortable: true}, swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}, 50, false, false},
		{"u8-overflow", Config{ForcePortable: true}, swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}, 80, true, false},
		// 16-bit kernel ceiling 0x7fff = 32767: match=1000 over 33 bases
		// scores 33000, overflowing even the wide kernel → scalar fallback.
		{"u16-overflow-scalar", Config{ForceWide: true}, swa.Scoring{Match: 1000, Mismatch: 1, Gap: 1}, 33, true, true},
		{"u16-fits", Config{ForceWide: true}, swa.Scoring{Match: 1000, Mismatch: 1, Gap: 1}, 16, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name[:3] == "asm" && !haveAsm {
				t.Skip("no assembly kernel on this architecture")
			}
			e := New(tc.cfg)
			p := dna.Pair{X: polyA(tc.l), Y: polyA(tc.l)}
			got, info, err := e.ScoreBatch(context.Background(), []dna.Pair{p}, tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.l * tc.sc.Match
			if got[0] != want {
				t.Fatalf("score %d, want %d", got[0], want)
			}
			if (info.Overflows > 0) != tc.wantOverflow {
				t.Errorf("overflows=%d, wantOverflow=%v (info %+v)", info.Overflows, tc.wantOverflow, info)
			}
			if (info.ScalarFallbacks > 0) != tc.wantScalar {
				t.Errorf("scalarFallbacks=%d, wantScalar=%v (info %+v)", info.ScalarFallbacks, tc.wantScalar, info)
			}
		})
	}
}

// TestScoringTooLargeForLanes verifies that scoring parameters beyond every
// lane width route straight to the scalar reference and stay exact.
func TestScoringTooLargeForLanes(t *testing.T) {
	sc := swa.Scoring{Match: 40000, Mismatch: 1, Gap: 1}
	rng := rand.New(rand.NewPCG(2, 2))
	p := dna.Pair{X: randSeq(rng, 40), Y: randSeq(rng, 60)}
	got, info, err := New(Config{}).ScoreBatch(context.Background(), []dna.Pair{p}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := swa.Score(p.X, p.Y, sc); got[0] != want {
		t.Fatalf("got %d want %d", got[0], want)
	}
	if info.KernelPairs != 0 || info.ScalarFallbacks != 1 {
		t.Fatalf("expected pure scalar batch, got %+v", info)
	}
}

// TestEdgeShapes covers empty sequences, single bases, gap=0 scoring and
// odd batch shapes (the assembly kernel pairs problems two at a time).
func TestEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	scs := []swa.Scoring{
		{Match: 2, Mismatch: 1, Gap: 1},
		{Match: 1, Mismatch: 0, Gap: 0},
		{Match: 3, Mismatch: 2, Gap: 0},
	}
	batches := [][]dna.Pair{
		{},
		{{X: dna.Seq{}, Y: randSeq(rng, 5)}},
		{{X: randSeq(rng, 5), Y: dna.Seq{}}},
		{{X: dna.Seq{0}, Y: dna.Seq{0}}},
		{{X: dna.Seq{0}, Y: dna.Seq{1}}},
		// Odd count with equal text lengths: last asm group is a solo.
		{
			{X: randSeq(rng, 33), Y: randSeq(rng, 47)},
			{X: randSeq(rng, 17), Y: randSeq(rng, 47)},
			{X: randSeq(rng, 64), Y: randSeq(rng, 47)},
		},
		// Empty pair between two full ones breaks adjacency grouping.
		{
			{X: randSeq(rng, 20), Y: randSeq(rng, 30)},
			{X: dna.Seq{}, Y: dna.Seq{}},
			{X: randSeq(rng, 20), Y: randSeq(rng, 30)},
		},
	}
	for name, e := range engines() {
		for bi, pairs := range batches {
			for _, sc := range scs {
				got, _, err := e.ScoreBatch(context.Background(), pairs, sc)
				if err != nil {
					t.Fatalf("%s batch %d: %v", name, bi, err)
				}
				for i, p := range pairs {
					if want := swa.Score(p.X, p.Y, sc); got[i] != want {
						t.Fatalf("%s batch %d pair %d sc=%+v: got %d want %d", name, bi, i, sc, got[i], want)
					}
				}
			}
		}
	}
}

// TestInvalidInputs checks the argument validation paths.
func TestInvalidInputs(t *testing.T) {
	e := New(Config{})
	if _, err := e.ScoreBatchInto(context.Background(), make([]int, 2), make([]dna.Pair, 3), swa.Scoring{Match: 1}); err == nil {
		t.Fatal("dst length mismatch not rejected")
	} else if err.Error() == "" {
		t.Fatal("empty error message")
	}
	if _, _, err := e.ScoreBatch(context.Background(), nil, swa.Scoring{Match: 0}); err == nil {
		t.Fatal("invalid scoring not rejected")
	}
}

// countdownCtx reports context.Canceled from Err after n polls. Done never
// closes, so only code that polls Err sees the cancellation — which is
// exactly the seam under test.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestContextCancelAborts verifies a cancelled context aborts the batch
// between pairs and mid-pair (between column chunks of a long text).
func TestContextCancelAborts(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs := []dna.Pair{{X: randSeq(rng, 10), Y: randSeq(rng, 10)}}
	for name, e := range engines() {
		if _, _, err := e.ScoreBatch(ctx, pairs, swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: pre-cancelled ctx: err = %v", name, err)
		}
	}

	// A single pair large enough to span several pollCells chunks: the
	// countdown lets the batch start, then cancels between chunks.
	big := dna.Pair{X: randSeq(rng, 4096), Y: randSeq(rng, 8192)} // 32 Mcells ≈ 8 chunks
	for name, e := range engines() {
		cctx := &countdownCtx{Context: context.Background(), left: 3}
		_, _, err := e.ScoreBatch(cctx, []dna.Pair{big}, swa.Scoring{Match: 2, Mismatch: 1, Gap: 1})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: mid-pair cancel: err = %v", name, err)
		}
	}
}

// TestStatsAccumulate checks the engine-level counters sum across batches.
func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	e := New(Config{})
	sc := swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}
	for b := 0; b < 3; b++ {
		pairs := []dna.Pair{
			{X: randSeq(rng, 30), Y: randSeq(rng, 30)},
			{X: randSeq(rng, 30), Y: randSeq(rng, 30)},
		}
		if _, _, err := e.ScoreBatch(context.Background(), pairs, sc); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Pairs != 6 {
		t.Fatalf("Pairs = %d, want 6: %+v", st.Pairs, st)
	}
	if st.KernelCalls != 6 {
		t.Fatalf("KernelCalls = %d, want 6: %+v", st.KernelCalls, st)
	}
}

// TestZeroSteadyStateAllocs is the allocation gate: a warm engine scoring
// into a caller-owned dst must not allocate. Runs under -race in CI. The
// pool is bypassed with a private scratch so the measurement is
// deterministic (sync.Pool can legitimately miss under GC pressure).
func TestZeroSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	pairs := []dna.Pair{
		{X: randSeq(rng, 64), Y: randSeq(rng, 96)},
		{X: randSeq(rng, 64), Y: randSeq(rng, 96)},
	}
	sc := swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}
	dst := make([]int, len(pairs))
	for name, e := range engines() {
		sr := &scratch{}
		var info BatchInfo
		warm := func() {
			if err := e.scoreBatch(context.Background(), sr, dst, pairs, sc, &info); err != nil {
				t.Fatal(err)
			}
		}
		warm()
		if n := testing.AllocsPerRun(100, warm); n != 0 {
			t.Fatalf("%s: %v allocs per warm batch, want 0", name, n)
		}
	}
}

// TestPortableMatchesAsm cross-checks the two 8-bit implementations on
// amd64 (elsewhere both configs run the same portable kernel and the test
// is a tautology that still passes).
func TestPortableMatchesAsm(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	a := New(Config{})
	p := New(Config{ForcePortable: true})
	sc := swa.Scoring{Match: 2, Mismatch: 1, Gap: 1}
	for trial := 0; trial < 200; trial++ {
		pairs := []dna.Pair{
			{X: randSeq(rng, 1+rng.IntN(100)), Y: randSeq(rng, 1+rng.IntN(200))},
			{X: randSeq(rng, 1+rng.IntN(100)), Y: randSeq(rng, 1+rng.IntN(200))},
		}
		ga, _, err := a.ScoreBatch(context.Background(), pairs, sc)
		if err != nil {
			t.Fatal(err)
		}
		gp, _, err := p.ScoreBatch(context.Background(), pairs, sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if ga[i] != gp[i] {
				t.Fatalf("trial %d pair %d: asm %d != portable %d", trial, i, ga[i], gp[i])
			}
		}
	}
}
