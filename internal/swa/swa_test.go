package swa

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

// TestTableII reproduces the paper's Table II: the scoring matrix for
// X = TACTG, Y = GAACTGA with c1=2, c2=1, gap=1.
func TestTableII(t *testing.T) {
	x := dna.MustParse("TACTG")
	y := dna.MustParse("GAACTGA")
	d := Matrix(x, y, PaperScoring)
	want := [][]int{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 0, 2, 1, 0},
		{0, 0, 2, 2, 1, 1, 1, 3},
		{0, 0, 1, 1, 4, 3, 2, 2},
		{0, 0, 0, 0, 3, 6, 5, 4},
		{0, 2, 1, 0, 2, 5, 8, 7},
	}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Errorf("d[%d][%d] = %d, paper Table II says %d", i, j, d[i][j], want[i][j])
			}
		}
	}
	best, bi, bj := MatrixMax(d)
	if best != 8 || bi != 5 || bj != 6 {
		t.Errorf("max = %d at (%d,%d), want 8 at (5,6)", best, bi, bj)
	}
	if got := Score(x, y, PaperScoring); got != 8 {
		t.Errorf("Score = %d, want 8", got)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	sc := PaperScoring
	if Score(nil, dna.MustParse("ACGT"), sc) != 0 {
		t.Error("empty pattern should score 0")
	}
	if Score(dna.MustParse("ACGT"), nil, sc) != 0 {
		t.Error("empty text should score 0")
	}
	// Single matching base.
	if got := Score(dna.MustParse("A"), dna.MustParse("A"), sc); got != 2 {
		t.Errorf("single match = %d, want 2", got)
	}
	// No similarity at all: A^m vs C^n -> all mismatches, score 0.
	x := make(dna.Seq, 5)
	y := make(dna.Seq, 9)
	for i := range y {
		y[i] = dna.C
	}
	if got := Score(x, y, sc); got != 0 {
		t.Errorf("disjoint sequences = %d, want 0", got)
	}
	// Perfect containment: score = c1 * m.
	x = dna.MustParse("ACGTT")
	y = append(dna.MustParse("GGG"), append(x.Clone(), dna.MustParse("AAA")...)...)
	if got := Score(x, y, sc); got != sc.MaxScore(len(x)) {
		t.Errorf("perfect containment = %d, want %d", got, sc.MaxScore(len(x)))
	}
}

func TestScoringValidate(t *testing.T) {
	if err := PaperScoring.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Scoring{Match: 0}).Validate(); err == nil {
		t.Error("Match=0 should be invalid")
	}
	if err := (Scoring{Match: 1, Gap: -1}).Validate(); err == nil {
		t.Error("negative gap magnitude should be invalid")
	}
}

func TestWavefrontMatchesScore(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		m := 1 + rng.IntN(24)
		n := 1 + rng.IntN(60)
		x := dna.RandSeq(rng, m)
		y := dna.RandSeq(rng, n)
		return WavefrontScore(x, y, PaperScoring) == Score(x, y, PaperScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWavefrontVariousScorings(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	schemes := []Scoring{
		{Match: 1, Mismatch: 0, Gap: 0},
		{Match: 3, Mismatch: 2, Gap: 1},
		{Match: 5, Mismatch: 4, Gap: 3},
	}
	for _, sc := range schemes {
		for trial := 0; trial < 20; trial++ {
			x := dna.RandSeq(rng, 1+rng.IntN(16))
			y := dna.RandSeq(rng, 1+rng.IntN(40))
			if WavefrontScore(x, y, sc) != Score(x, y, sc) {
				t.Fatalf("scheme %+v: wavefront disagrees", sc)
			}
		}
	}
}

// TestTableIII reproduces the anti-diagonal schedule of the paper's
// Table III (5×7 example, top-left cell computed at t = 1).
func TestTableIII(t *testing.T) {
	tab := ScheduleTable(5, 7)
	want := [][]int{
		{1, 2, 3, 4, 5, 6, 7},
		{2, 3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 8, 9},
		{4, 5, 6, 7, 8, 9, 10},
		{5, 6, 7, 8, 9, 10, 11},
	}
	for i := range want {
		for j := range want[i] {
			if tab[i][j] != want[i][j] {
				t.Errorf("t(%d,%d) = %d, want %d", i, j, tab[i][j], want[i][j])
			}
		}
	}
}

func TestAlignTableIIExample(t *testing.T) {
	// The boldfaced path of Table II aligns ACTG against ACTG.
	a := Align(dna.MustParse("TACTG"), dna.MustParse("GAACTGA"), PaperScoring)
	if a.Score != 8 {
		t.Fatalf("Score = %d, want 8", a.Score)
	}
	if a.AlignedX != "ACTG" || a.AlignedY != "ACTG" {
		t.Errorf("alignment %q/%q, want ACTG/ACTG", a.AlignedX, a.AlignedY)
	}
	if a.XStart != 1 || a.XEnd != 5 || a.YStart != 2 || a.YEnd != 6 {
		t.Errorf("coordinates X[%d:%d] Y[%d:%d], want X[1:5] Y[2:6]",
			a.XStart, a.XEnd, a.YStart, a.YEnd)
	}
	if a.Matches != 4 || a.Mismatches != 0 || a.Gaps != 0 {
		t.Errorf("stats m=%d mm=%d g=%d, want 4/0/0", a.Matches, a.Mismatches, a.Gaps)
	}
	if a.Identity() != 1.0 {
		t.Errorf("identity = %f, want 1", a.Identity())
	}
}

func TestAlignScoreConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		x := dna.RandSeq(rng, 1+rng.IntN(20))
		y := dna.RandSeq(rng, 1+rng.IntN(50))
		a := Align(x, y, PaperScoring)
		if a.Score != Score(x, y, PaperScoring) {
			return false
		}
		// Re-score the reported alignment columns; it must equal a.Score.
		s := 0
		for i := 0; i < len(a.AlignedX); i++ {
			cx, cy := a.AlignedX[i], a.AlignedY[i]
			switch {
			case cx == '-' || cy == '-':
				s -= PaperScoring.Gap
			case cx == cy:
				s += PaperScoring.Match
			default:
				s -= PaperScoring.Mismatch
			}
		}
		return s == a.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlignWithGaps(t *testing.T) {
	// X fits Y with one deletion: X=ACGTACGT, Y contains ACGT-CGT region
	x := dna.MustParse("ACGTACGT")
	y := dna.MustParse("TTACGTCGTTT")
	a := Align(x, y, PaperScoring)
	if a.Gaps == 0 {
		t.Errorf("expected a gapped alignment, got %v", a)
	}
	if !strings.Contains(a.AlignedX, "ACGT") {
		t.Errorf("unexpected alignment: %v", a)
	}
}

func TestAlignEmpty(t *testing.T) {
	a := Align(nil, nil, PaperScoring)
	if a.Score != 0 || a.AlignedX != "" {
		t.Errorf("empty alignment wrong: %+v", a)
	}
}

func TestAlignmentString(t *testing.T) {
	a := Align(dna.MustParse("ACGT"), dna.MustParse("ACGT"), PaperScoring)
	s := a.String()
	if !strings.Contains(s, "score=8") || !strings.Contains(s, "||||") {
		t.Errorf("String output unexpected:\n%s", s)
	}
}

func TestFilterByScore(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	pairs := dna.PlantedPairs(rng, 8, 20, 200, 1.0, dna.MutationModel{})
	noise := dna.RandomPairs(rng, 8, 20, 200)
	all := append(pairs, noise...)
	tau := PaperScoring.MaxScore(20) - 1 // only perfect plants pass
	got := FilterByScore(all, tau, PaperScoring)
	if len(got) < 8 {
		t.Fatalf("expected at least the 8 planted pairs, got %d", len(got))
	}
	for _, r := range got {
		if r.Score <= tau {
			t.Errorf("result %d has score %d <= tau %d", r.Index, r.Score, tau)
		}
	}
	planted := 0
	for _, r := range got {
		if r.Index < 8 {
			planted++
		}
	}
	if planted != 8 {
		t.Errorf("only %d of 8 planted pairs recovered", planted)
	}
}

func TestAffineEqualsLinearWhenOpenEqualsExtend(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		x := dna.RandSeq(rng, 1+rng.IntN(16))
		y := dna.RandSeq(rng, 1+rng.IntN(48))
		lin := Score(x, y, PaperScoring)
		aff := ScoreAffine(x, y, PaperScoring.Linear())
		return lin == aff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAffinePrefersLongGaps(t *testing.T) {
	// With expensive opening but cheap extension, bridging a 2-base gap is
	// worthwhile under affine scoring but not under linear gap = open.
	x := dna.MustParse("AAAACCCC")
	y := dna.MustParse("AAAATTCCCC")
	aff := AffineScoring{Match: 2, Mismatch: 3, GapOpen: 4, GapExtend: 1}
	got := ScoreAffine(x, y, aff)
	// Best: AAAA--CCCC: 8*2 - (4 + 1) = 11.
	if got != 11 {
		t.Errorf("affine score = %d, want 11", got)
	}
	// Linear with gap=4: bridging costs 2*4=8, so taking just AAAA (or
	// CCCC) for 8 ties the bridged alignment; affine must beat it.
	lin := Score(x, y, Scoring{Match: 2, Mismatch: 3, Gap: 4})
	if lin != 8 {
		t.Errorf("linear score = %d, want 8", lin)
	}
	if got <= lin {
		t.Errorf("affine should beat linear here: lin=%d aff=%d", lin, got)
	}
}

func TestAffineValidate(t *testing.T) {
	ok := AffineScoring{Match: 2, Mismatch: 1, GapOpen: 3, GapExtend: 1}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	bad := []AffineScoring{
		{Match: 0},
		{Match: 1, GapOpen: 1, GapExtend: 2},
		{Match: 1, Mismatch: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scheme %d should be invalid", i)
		}
	}
}

func TestAffineNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		x := dna.RandSeq(rng, 1+rng.IntN(12))
		y := dna.RandSeq(rng, 1+rng.IntN(30))
		return ScoreAffine(x, y, AffineScoring{Match: 2, Mismatch: 5, GapOpen: 6, GapExtend: 2}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixBordersZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	d := Matrix(dna.RandSeq(rng, 6), dna.RandSeq(rng, 10), PaperScoring)
	for j := range d[0] {
		if d[0][j] != 0 {
			t.Fatal("top border not zero")
		}
	}
	for i := range d {
		if d[i][0] != 0 {
			t.Fatal("left border not zero")
		}
	}
}

func BenchmarkScoreWordwise(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	x := dna.RandSeq(rng, 128)
	y := dna.RandSeq(rng, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Score(x, y, PaperScoring)
	}
	b.ReportMetric(float64(b.N)*128*1024/b.Elapsed().Seconds()/1e9, "GCUPS")
}

func BenchmarkWavefrontScore(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 6))
	x := dna.RandSeq(rng, 128)
	y := dna.RandSeq(rng, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WavefrontScore(x, y, PaperScoring)
	}
}
