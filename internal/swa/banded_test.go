package swa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

func TestScoreBandedFullWidthEqualsScore(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 40))
		x := dna.RandSeq(rng, 1+rng.IntN(16))
		y := dna.RandSeq(rng, 1+rng.IntN(48))
		// A band wide enough to cover every cell.
		got, err := ScoreBanded(x, y, PaperScoring, Band{Offset: 0, Width: len(x) + len(y)})
		if err != nil {
			return false
		}
		return got == Score(x, y, PaperScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func refBandedScore(x, y dna.Seq, sc Scoring, band Band) int {
	// Oracle: full DP over cells restricted to the band.
	m, n := len(x), len(y)
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
	}
	best := 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			if diff := (j - i) - band.Offset; diff < -band.Width || diff > band.Width {
				continue
			}
			d[i][j] = max(0, d[i-1][j]-sc.Gap, d[i][j-1]-sc.Gap,
				d[i-1][j-1]+sc.W(x[i-1], y[j-1]))
			if d[i][j] > best {
				best = d[i][j]
			}
		}
	}
	return best
}

func TestScoreBandedMatchesOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		x := dna.RandSeq(rng, 1+rng.IntN(14))
		y := dna.RandSeq(rng, 1+rng.IntN(40))
		band := Band{Offset: rng.IntN(21) - 10, Width: rng.IntN(6)}
		got, err := ScoreBanded(x, y, PaperScoring, band)
		if err != nil {
			return false
		}
		want := refBandedScore(x, y, PaperScoring, band)
		if got != want {
			t.Logf("band %+v m=%d n=%d: got %d want %d", band, len(x), len(y), got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestScoreBandedValidate(t *testing.T) {
	if _, err := ScoreBanded(nil, nil, PaperScoring, Band{Width: -1}); err == nil {
		t.Error("negative width should fail")
	}
	got, err := ScoreBanded(nil, dna.MustParse("ACGT"), PaperScoring, Band{Width: 2})
	if err != nil || got != 0 {
		t.Error("empty pattern should score 0")
	}
}

func TestAlignBandedRecoverHit(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	x := dna.RandSeq(rng, 24)
	y := dna.RandSeq(rng, 400)
	copy(y[200:], x) // exact plant at offset 200
	// Band centred on the hit diagonal (j - i ≈ 200).
	a, err := AlignBanded(x, y, PaperScoring, Band{Offset: 200, Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != PaperScoring.MaxScore(24) {
		t.Errorf("banded alignment score %d, want %d", a.Score, PaperScoring.MaxScore(24))
	}
	if a.YStart != 200 || a.YEnd != 224 {
		t.Errorf("banded alignment at Y[%d:%d], want Y[200:224]", a.YStart, a.YEnd)
	}
	if a.Identity() != 1 {
		t.Errorf("identity %f", a.Identity())
	}
}

func TestAlignBandedConsistentWithScoreBanded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		x := dna.RandSeq(rng, 1+rng.IntN(12))
		y := dna.RandSeq(rng, 1+rng.IntN(36))
		band := Band{Offset: rng.IntN(15) - 7, Width: rng.IntN(5)}
		a, err := AlignBanded(x, y, PaperScoring, band)
		if err != nil {
			return false
		}
		s, err := ScoreBanded(x, y, PaperScoring, band)
		if err != nil {
			return false
		}
		return a.Score == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAlignBandedEmptyAndInvalid(t *testing.T) {
	if _, err := AlignBanded(nil, nil, PaperScoring, Band{Width: -2}); err == nil {
		t.Error("negative width should fail")
	}
	a, err := AlignBanded(dna.MustParse("A"), dna.MustParse("C"), PaperScoring, Band{Width: 1})
	if err != nil || a.Score != 0 {
		t.Errorf("all-mismatch banded alignment: %v %v", a, err)
	}
}
