package swa

import (
	"fmt"
	"strings"

	"repro/internal/dna"
)

// Alignment is a reconstructed optimal local alignment. Coordinates are
// 0-based half-open ranges into the original sequences.
type Alignment struct {
	Score        int
	XStart, XEnd int
	YStart, YEnd int
	AlignedX     string // with '-' for gaps in X
	AlignedY     string // with '-' for gaps in Y
	Matches      int    // aligned columns with equal bases
	Mismatches   int
	Gaps         int // gap columns (either side)
}

// String renders the alignment in the usual three-line form.
func (a Alignment) String() string {
	var mid strings.Builder
	for i := 0; i < len(a.AlignedX); i++ {
		switch {
		case a.AlignedX[i] == '-' || a.AlignedY[i] == '-':
			mid.WriteByte(' ')
		case a.AlignedX[i] == a.AlignedY[i]:
			mid.WriteByte('|')
		default:
			mid.WriteByte('.')
		}
	}
	return fmt.Sprintf("score=%d X[%d:%d] Y[%d:%d]\n%s\n%s\n%s",
		a.Score, a.XStart, a.XEnd, a.YStart, a.YEnd,
		a.AlignedX, mid.String(), a.AlignedY)
}

// Identity returns the fraction of alignment columns that are matches.
func (a Alignment) Identity() float64 {
	n := len(a.AlignedX)
	if n == 0 {
		return 0
	}
	return float64(a.Matches) / float64(n)
}

// Align computes the optimal local alignment of x and y: it builds the full
// scoring matrix, finds the maximum cell, and traces back along the
// recurrence until a zero cell, preferring diagonal moves (the conventional
// Smith-Waterman traceback the paper delegates to the CPU for pairs passing
// the threshold filter).
func Align(x, y dna.Seq, sc Scoring) Alignment {
	d := Matrix(x, y, sc)
	best, bi, bj := MatrixMax(d)
	a := Alignment{Score: best}
	if best == 0 {
		return a
	}
	var ax, ay []byte
	i, j := bi, bj
	for i > 0 && j > 0 && d[i][j] > 0 {
		cell := d[i][j]
		switch {
		case cell == d[i-1][j-1]+sc.W(x[i-1], y[j-1]):
			ax = append(ax, x[i-1].Byte())
			ay = append(ay, y[j-1].Byte())
			if x[i-1] == y[j-1] {
				a.Matches++
			} else {
				a.Mismatches++
			}
			i, j = i-1, j-1
		case cell == d[i-1][j]-sc.Gap:
			ax = append(ax, x[i-1].Byte())
			ay = append(ay, '-')
			a.Gaps++
			i--
		case cell == d[i][j-1]-sc.Gap:
			ax = append(ax, '-')
			ay = append(ay, y[j-1].Byte())
			a.Gaps++
			j--
		default:
			// Unreachable if the matrix is consistent with the recurrence.
			panic("swa: traceback: matrix inconsistent with recurrence")
		}
	}
	a.XStart, a.XEnd = i, bi
	a.YStart, a.YEnd = j, bj
	reverse(ax)
	reverse(ay)
	a.AlignedX, a.AlignedY = string(ax), string(ay)
	return a
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// FilterResult reports one pair that passed the threshold screen.
type FilterResult struct {
	Index int // position in the input pair slice
	Score int
}

// FilterByScore returns the pairs whose maximum local-alignment score is
// strictly greater than tau — the screening step the paper performs with the
// BPBC engine before detailed CPU alignment (§III). This reference version
// exists to validate the bulk engines' filtering behaviour.
func FilterByScore(pairs []dna.Pair, tau int, sc Scoring) []FilterResult {
	var out []FilterResult
	for i, p := range pairs {
		if s := Score(p.X, p.Y, sc); s > tau {
			out = append(out, FilterResult{Index: i, Score: s})
		}
	}
	return out
}
