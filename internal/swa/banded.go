package swa

import (
	"fmt"

	"repro/internal/dna"
)

// Band restricts the dynamic program to cells (i, j) with
// |(j - i) - Offset| <= Width: a diagonal stripe. Combined with the bulk
// engine's argmax tracking (bpbc.BulkScoresPos), a screen hit at (ei, ej)
// can be re-aligned inside a narrow band around offset ej-ei in O(m·Width)
// instead of O(m·n) — the standard follow-up to a seed-and-filter pipeline.
type Band struct {
	Offset int // centre diagonal, j - i
	Width  int // half-width; Width >= 0
}

// Validate reports whether the band is usable.
func (b Band) Validate() error {
	if b.Width < 0 {
		return fmt.Errorf("swa: band width must be >= 0, got %d", b.Width)
	}
	return nil
}

// ScoreBanded computes the maximum local-alignment score restricted to the
// band. When the band covers the whole matrix it equals Score.
func ScoreBanded(x, y dna.Seq, sc Scoring, band Band) (int, error) {
	if err := band.Validate(); err != nil {
		return 0, err
	}
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 0, nil
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	best := 0
	for i := 1; i <= m; i++ {
		lo := max(1, i+band.Offset-band.Width)
		hi := min(n, i+band.Offset+band.Width)
		if lo > hi {
			prev, cur = cur, prev
			continue // band is outside the matrix on this row
		}
		if lo > 1 {
			cur[lo-1] = 0 // outside-band neighbour reads as border
		}
		for j := lo; j <= hi; j++ {
			v := max(0,
				prev[j]-sc.Gap,
				cur[j-1]-sc.Gap,
				prev[j-1]+sc.W(x[i-1], y[j-1]))
			cur[j] = v
			if v > best {
				best = v
			}
		}
		if hi < n {
			cur[hi+1] = 0 // next row's diag/left outside the band
		}
		prev, cur = cur, prev
	}
	return best, nil
}

// AlignBanded reconstructs the optimal in-band local alignment. It builds
// only the banded stripe of the matrix, so memory is O(m·Width).
func AlignBanded(x, y dna.Seq, sc Scoring, band Band) (Alignment, error) {
	if err := band.Validate(); err != nil {
		return Alignment{}, err
	}
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return Alignment{}, nil
	}
	width := 2*band.Width + 1
	// stripe[i][k] = d[i][ j ] with j = i + band.Offset - band.Width + k.
	stripe := make([][]int, m+1)
	for i := range stripe {
		stripe[i] = make([]int, width)
	}
	cell := func(i, j int) int {
		if i < 1 || j < 1 || j > n {
			return 0
		}
		k := j - (i + band.Offset - band.Width)
		if k < 0 || k >= width {
			return 0
		}
		return stripe[i][k]
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= m; i++ {
		for k := 0; k < width; k++ {
			j := i + band.Offset - band.Width + k
			if j < 1 || j > n {
				continue
			}
			v := max(0,
				cell(i-1, j)-sc.Gap,
				cell(i, j-1)-sc.Gap,
				cell(i-1, j-1)+sc.W(x[i-1], y[j-1]))
			stripe[i][k] = v
			if v >= best {
				best, bi, bj = v, i, j
			}
		}
	}
	a := Alignment{Score: best}
	if best == 0 {
		return a, nil
	}
	var ax, ay []byte
	i, j := bi, bj
	for i > 0 && j > 0 && cell(i, j) > 0 {
		v := cell(i, j)
		switch {
		case v == cell(i-1, j-1)+sc.W(x[i-1], y[j-1]):
			ax = append(ax, x[i-1].Byte())
			ay = append(ay, y[j-1].Byte())
			if x[i-1] == y[j-1] {
				a.Matches++
			} else {
				a.Mismatches++
			}
			i, j = i-1, j-1
		case v == cell(i-1, j)-sc.Gap:
			ax = append(ax, x[i-1].Byte())
			ay = append(ay, '-')
			a.Gaps++
			i--
		case v == cell(i, j-1)-sc.Gap:
			ax = append(ax, '-')
			ay = append(ay, y[j-1].Byte())
			a.Gaps++
			j--
		default:
			return Alignment{}, fmt.Errorf("swa: banded traceback inconsistent at (%d,%d)", i, j)
		}
	}
	a.XStart, a.XEnd = i, bi
	a.YStart, a.YEnd = j, bj
	reverse(ax)
	reverse(ay)
	a.AlignedX, a.AlignedY = string(ax), string(ay)
	return a, nil
}
