package swa

import (
	"repro/internal/dna"
)

// GlobalScore computes the Needleman-Wunsch global alignment score of x and
// y (both sequences aligned end to end) under the same match/mismatch/gap
// scheme. Provided for library completeness alongside the local (Score) and
// semi-global (SemiGlobalScore) modes.
func GlobalScore(x, y dna.Seq, sc Scoring) int {
	m, n := len(x), len(y)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = -j * sc.Gap
	}
	for i := 1; i <= m; i++ {
		cur[0] = -i * sc.Gap
		for j := 1; j <= n; j++ {
			cur[j] = max(
				prev[j]-sc.Gap,
				cur[j-1]-sc.Gap,
				prev[j-1]+sc.W(x[i-1], y[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// SemiGlobalScore computes the best alignment of the whole of x against any
// substring of y ("glocal" / fitting alignment): gaps before and after the
// matched region of y are free, but all of x must align. This is the mode a
// read-mapper scores with.
func SemiGlobalScore(x, y dna.Seq, sc Scoring) int {
	m, n := len(x), len(y)
	if m == 0 {
		return 0
	}
	const negInf = -1 << 30
	if n == 0 {
		return -m * sc.Gap
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	// First row: starting anywhere in y is free.
	best := negInf
	for i := 1; i <= m; i++ {
		cur[0] = -i * sc.Gap
		for j := 1; j <= n; j++ {
			cur[j] = max(
				prev[j]-sc.Gap,
				cur[j-1]-sc.Gap,
				prev[j-1]+sc.W(x[i-1], y[j-1]))
		}
		prev, cur = cur, prev
	}
	for j := 0; j <= n; j++ {
		if prev[j] > best {
			best = prev[j]
		}
	}
	return best
}
