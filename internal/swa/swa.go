// Package swa implements the reference Smith-Waterman algorithm (§III of
// the paper): the quadratic dynamic program over the scoring matrix, the
// anti-diagonal ("wavefront") parallel schedule, traceback and alignment
// reconstruction, and the threshold-screening helper the paper's use case
// builds on. It serves both as a usable aligner and as the oracle against
// which every bit-parallel engine in this repository is validated.
package swa

import (
	"fmt"

	"repro/internal/dna"
)

// Scoring fixes the linear-gap scoring scheme. Mismatch and Gap are
// penalty magnitudes (subtracted), Match is the reward (added); this is the
// paper's w(x,y) = c1 / -c2 and gap cost.
type Scoring struct {
	Match    int // c1 > 0
	Mismatch int // c2 >= 0, subtracted on mismatch
	Gap      int // gap >= 0, subtracted per gap column/row
}

// PaperScoring is the scheme of the paper's Table II example and evaluation:
// c1 = 2, c2 = 1, gap = 1.
var PaperScoring = Scoring{Match: 2, Mismatch: 1, Gap: 1}

// Validate reports whether the scheme is usable.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("swa: Match must be positive, got %d", s.Match)
	}
	if s.Mismatch < 0 || s.Gap < 0 {
		return fmt.Errorf("swa: Mismatch and Gap are magnitudes and must be >= 0")
	}
	return nil
}

// W returns the substitution score w(x, y).
func (s Scoring) W(x, y dna.Base) int {
	if x == y {
		return s.Match
	}
	return -s.Mismatch
}

// MaxScore returns the largest score any cell can reach for a pattern of
// length m: a full run of matches, c1*m.
func (s Scoring) MaxScore(m int) int { return s.Match * m }

// Score computes the maximum local-alignment score of x against y using the
// row-by-row recurrence with O(n) memory. This is the paper's
// "[Sequential algorithm for the SWA]" restricted to the score.
func Score(x, y dna.Seq, sc Scoring) int {
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 0
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	best := 0
	match, mismatch, gap := sc.Match, -sc.Mismatch, sc.Gap
	for i := 1; i <= m; i++ {
		xi := x[i-1]
		for j := 1; j <= n; j++ {
			w := mismatch
			if y[j-1] == xi {
				w = match
			}
			v := max(0, prev[j]-gap, cur[j-1]-gap, prev[j-1]+w)
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Matrix computes the full (m+1)×(n+1) scoring matrix d, with d[0][*] and
// d[*][0] zero, as in the paper's Table II.
func Matrix(x, y dna.Seq, sc Scoring) [][]int {
	m, n := len(x), len(y)
	d := make([][]int, m+1)
	cells := make([]int, (m+1)*(n+1))
	for i := range d {
		d[i], cells = cells[:n+1], cells[n+1:]
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d[i][j] = max(0,
				d[i-1][j]-sc.Gap,
				d[i][j-1]-sc.Gap,
				d[i-1][j-1]+sc.W(x[i-1], y[j-1]))
		}
	}
	return d
}

// MatrixMax returns the maximum entry of a scoring matrix and its position
// (the bottom-right-most maximum, matching traceback convention).
func MatrixMax(d [][]int) (best, bi, bj int) {
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= best {
				best, bi, bj = d[i][j], i, j
			}
		}
	}
	return best, bi, bj
}

// WavefrontScore computes the same maximum score by the paper's
// "[Parallel algorithm for the SWA]": the matrix is evaluated one
// anti-diagonal t = i+j-2 at a time; all cells on an anti-diagonal are
// independent. The result must equal Score exactly.
func WavefrontScore(x, y dna.Seq, sc Scoring) int {
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 0
	}
	// Three rolling anti-diagonals indexed by row i: cell (i, j) with
	// j = t - i + 1 (1-based rows/cols, t from 0 to n+m-2).
	prev2 := make([]int, m+1) // t-2
	prev1 := make([]int, m+1) // t-1
	cur := make([]int, m+1)
	best := 0
	for t := 0; t <= n+m-2; t++ {
		for i := 1; i <= m; i++ {
			j := t - i + 2 // paper uses 0-based i; with 1-based rows j = t-i+2
			if j < 1 || j > n {
				cur[i] = 0
				continue
			}
			up := 0   // d[i-1][j]  — on anti-diagonal t-1 at row i-1
			left := 0 // d[i][j-1]  — on anti-diagonal t-1 at row i
			diag := 0 // d[i-1][j-1] — on anti-diagonal t-2 at row i-1
			if i-1 >= 1 && j <= n {
				up = prev1[i-1]
			}
			if j-1 >= 1 {
				left = prev1[i]
			}
			if i-1 >= 1 && j-1 >= 1 {
				diag = prev2[i-1]
			}
			v := max(0, up-sc.Gap, left-sc.Gap, diag+sc.W(x[i-1], y[j-1]))
			cur[i] = v
			if v > best {
				best = v
			}
		}
		prev2, prev1, cur = prev1, cur, prev2
	}
	return best
}

// ScheduleTable returns, for an m×n problem, the anti-diagonal step t at
// which each cell d[i][j] (0-based) is computed by the wavefront schedule,
// using the paper's numbering where the top-left cell carries t = 1 — the
// contents of the paper's Table III.
func ScheduleTable(m, n int) [][]int {
	tab := make([][]int, m)
	for i := range tab {
		tab[i] = make([]int, n)
		for j := range tab[i] {
			tab[i][j] = i + j + 1
		}
	}
	return tab
}
