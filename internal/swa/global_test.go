package swa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

func TestGlobalScoreIdentical(t *testing.T) {
	x := dna.MustParse("ACGTACGT")
	if got := GlobalScore(x, x, PaperScoring); got != 16 {
		t.Errorf("identical global score = %d, want 16", got)
	}
}

func TestGlobalScoreEmpty(t *testing.T) {
	y := dna.MustParse("ACGT")
	if got := GlobalScore(nil, y, PaperScoring); got != -4 {
		t.Errorf("empty-vs-ACGT global = %d, want -4 (4 gaps)", got)
	}
	if got := GlobalScore(y, nil, PaperScoring); got != -4 {
		t.Errorf("ACGT-vs-empty global = %d, want -4", got)
	}
	if GlobalScore(nil, nil, PaperScoring) != 0 {
		t.Error("empty global should be 0")
	}
}

// refGlobal is a full-matrix oracle.
func refGlobal(x, y dna.Seq, sc Scoring) int {
	m, n := len(x), len(y)
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
	}
	for i := 0; i <= m; i++ {
		d[i][0] = -i * sc.Gap
	}
	for j := 0; j <= n; j++ {
		d[0][j] = -j * sc.Gap
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			d[i][j] = max(d[i-1][j]-sc.Gap, d[i][j-1]-sc.Gap,
				d[i-1][j-1]+sc.W(x[i-1], y[j-1]))
		}
	}
	return d[m][n]
}

func TestGlobalScoreMatchesOracle(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 95))
		x := dna.RandSeq(rng, rng.IntN(20))
		y := dna.RandSeq(rng, rng.IntN(40))
		return GlobalScore(x, y, PaperScoring) == refGlobal(x, y, PaperScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSemiGlobalFitsSubstring(t *testing.T) {
	rng := rand.New(rand.NewPCG(96, 97))
	x := dna.RandSeq(rng, 12)
	y := dna.RandSeq(rng, 100)
	copy(y[40:], x)
	if got := SemiGlobalScore(x, y, PaperScoring); got != PaperScoring.MaxScore(12) {
		t.Errorf("planted semi-global = %d, want %d", got, PaperScoring.MaxScore(12))
	}
}

func TestSemiGlobalRelations(t *testing.T) {
	// local >= semi-global >= global, for any inputs (each relaxes the
	// previous mode's constraints).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 98))
		x := dna.RandSeq(rng, 1+rng.IntN(16))
		y := dna.RandSeq(rng, 1+rng.IntN(40))
		local := Score(x, y, PaperScoring)
		semi := SemiGlobalScore(x, y, PaperScoring)
		global := GlobalScore(x, y, PaperScoring)
		return local >= semi && semi >= global
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSemiGlobalEdges(t *testing.T) {
	if SemiGlobalScore(nil, dna.MustParse("AC"), PaperScoring) != 0 {
		t.Error("empty pattern semi-global should be 0")
	}
	if got := SemiGlobalScore(dna.MustParse("ACG"), nil, PaperScoring); got != -3 {
		t.Errorf("empty text semi-global = %d, want -3", got)
	}
}
