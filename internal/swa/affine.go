package swa

import (
	"fmt"

	"repro/internal/dna"
)

// AffineScoring extends Scoring with Gotoh-style affine gaps: opening a gap
// costs GapOpen and each further gap column costs GapExtend. This is a
// beyond-paper extension (the paper uses linear gaps only) provided because
// affine gaps are the norm in production aligners; see DESIGN.md §5.
type AffineScoring struct {
	Match     int
	Mismatch  int // magnitude
	GapOpen   int // magnitude, charged for the first column of a gap
	GapExtend int // magnitude, charged for each subsequent column
}

// Validate reports whether the scheme is usable.
func (s AffineScoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("swa: affine Match must be positive")
	}
	if s.Mismatch < 0 || s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("swa: affine penalties must be >= 0")
	}
	if s.GapExtend > s.GapOpen {
		return fmt.Errorf("swa: GapExtend > GapOpen makes gap opening free to defer")
	}
	return nil
}

func (s AffineScoring) w(x, y dna.Base) int {
	if x == y {
		return s.Match
	}
	return -s.Mismatch
}

// Linear converts a linear-gap scheme into the equivalent affine scheme
// (open == extend).
func (s Scoring) Linear() AffineScoring {
	return AffineScoring{Match: s.Match, Mismatch: s.Mismatch, GapOpen: s.Gap, GapExtend: s.Gap}
}

// ScoreAffine computes the maximum local-alignment score under affine gaps
// with the Gotoh three-matrix recurrence in O(n) memory:
//
//	E[i][j] = max(E[i][j-1] - extend, H[i][j-1] - open)   (gap in X)
//	F[i][j] = max(F[i-1][j] - extend, H[i-1][j] - open)   (gap in Y)
//	H[i][j] = max(0, H[i-1][j-1] + w(x_i,y_j), E[i][j], F[i][j])
func ScoreAffine(x, y dna.Seq, sc AffineScoring) int {
	m, n := len(x), len(y)
	if m == 0 || n == 0 {
		return 0
	}
	const negInf = -1 << 30
	hPrev := make([]int, n+1)
	fPrev := make([]int, n+1)
	hCur := make([]int, n+1)
	fCur := make([]int, n+1)
	for j := range fPrev {
		fPrev[j] = negInf
	}
	best := 0
	for i := 1; i <= m; i++ {
		e := negInf
		hCur[0] = 0
		fCur[0] = negInf
		for j := 1; j <= n; j++ {
			e = max(e-sc.GapExtend, hCur[j-1]-sc.GapOpen)
			f := max(fPrev[j]-sc.GapExtend, hPrev[j]-sc.GapOpen)
			h := max(0, hPrev[j-1]+sc.w(x[i-1], y[j-1]), e, f)
			hCur[j] = h
			fCur[j] = f
			if h > best {
				best = h
			}
		}
		hPrev, hCur = hCur, hPrev
		fPrev, fCur = fCur, fPrev
	}
	return best
}
