package match

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

// TestPaperStringMatchingExample reproduces the §II prose example:
// X=ATTCG, Y=AAATTCGGGA gives d = 110111 — read left to right as offsets
// j = 0..5, i.e. d = [1,1,0,1,1,1]: the only occurrence is at j=2.
func TestPaperStringMatchingExample(t *testing.T) {
	x := dna.MustParse("ATTCG")
	y := dna.MustParse("AAATTCGGGA")
	d, err := Straightforward(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{1, 1, 0, 1, 1, 1}
	if len(d) != len(want) {
		t.Fatalf("len(d) = %d, want %d", len(d), len(want))
	}
	for j := range want {
		if d[j] != want[j] {
			t.Errorf("d[%d] = %d, want %d", j, d[j], want[j])
		}
	}
	occ, err := Occurrences(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 1 || occ[0] != 2 {
		t.Errorf("occurrences = %v, want [2]", occ)
	}
}

// TestPaperBulkExample reproduces the §II four-lane worked example:
//
//	X0=ATCGA Y0=AATCGACA   X1=TCGAC Y1=AATCGACA
//	X2=AAAAA Y2=AAAAAAAA   X3=TTTTT Y3=AATTTTTT
//
// The paper prints d[0]=0100, d[1]=0101, d[2]=1110, d[3]=1100 (lane 3..0),
// which is the bitwise COMPLEMENT of the d its own pseudocode computes
// (d[j] bit k = 1 means "no match"): checking the stated strings by hand,
// lane 0 (X0=ATCGA in Y0=AATCGACA) matches only at offset 1, lane 2
// matches everywhere, lane 3 at offsets 2 and 3. We assert the correct
// values and record the paper's sign flip as an erratum in EXPERIMENTS.md.
func TestPaperBulkExample(t *testing.T) {
	xs := []dna.Seq{
		dna.MustParse("ATCGA"),
		dna.MustParse("TCGAC"),
		dna.MustParse("AAAAA"),
		dna.MustParse("TTTTT"),
	}
	ys := []dna.Seq{
		dna.MustParse("AATCGACA"),
		dna.MustParse("AATCGACA"),
		dna.MustParse("AAAAAAAA"),
		dna.MustParse("AATTTTTT"),
	}
	res, err := BulkSeqs[uint32](xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Complement of the paper's printed values (see comment above).
	want := []uint32{0b1011, 0b1010, 0b0001, 0b0011}
	if len(res.D) != len(want) {
		t.Fatalf("len(D) = %d, want %d", len(res.D), len(want))
	}
	for j := range want {
		if got := res.D[j] & 0xF; got != want[j] {
			t.Errorf("d[%d] = %04b, want %04b (paper prints the complement %04b)",
				j, got, want[j], ^want[j]&0xF)
		}
	}
	// Lane views.
	if got := res.LaneOffsets(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("lane 0 offsets = %v, want [1]", got)
	}
	if got := res.LaneOffsets(3); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("lane 3 offsets = %v, want [2 3]", got)
	}
	if got := res.LaneOffsets(2); len(got) != 4 {
		t.Errorf("lane 2 should match everywhere, got %v", got)
	}
}

func TestBulkMatchesStraightforward(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		m := 1 + rng.IntN(12)
		n := m + rng.IntN(40)
		xs := make([]dna.Seq, 32)
		ys := make([]dna.Seq, 32)
		for k := range xs {
			xs[k] = dna.RandSeq(rng, m)
			ys[k] = dna.RandSeq(rng, n)
			if rng.Uint32()&1 == 0 {
				// Plant an exact occurrence to exercise the zero path.
				at := rng.IntN(n - m + 1)
				copy(ys[k][at:], xs[k])
			}
		}
		res, err := BulkSeqs[uint32](xs, ys)
		if err != nil {
			return false
		}
		for k := 0; k < 32; k++ {
			d, err := Straightforward(xs[k], ys[k])
			if err != nil {
				return false
			}
			for j := range d {
				if (d[j] == 0) != res.MatchAt(k, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBulk64Lanes(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]dna.Seq, 64)
	ys := make([]dna.Seq, 64)
	for k := range xs {
		xs[k] = dna.RandSeq(rng, 8)
		ys[k] = dna.RandSeq(rng, 64)
		copy(ys[k][k%(64-8):], xs[k])
	}
	res, err := BulkSeqs[uint64](xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 64; k++ {
		if !res.MatchAt(k, k%(64-8)) {
			t.Errorf("lane %d: planted match not found", k)
		}
	}
}

func TestMatchErrors(t *testing.T) {
	if _, err := Straightforward(nil, dna.MustParse("AC")); err == nil {
		t.Error("empty pattern should fail")
	}
	if _, err := Straightforward(dna.MustParse("ACGT"), dna.MustParse("AC")); err == nil {
		t.Error("pattern longer than text should fail")
	}
	if _, err := Occurrences(nil, nil); err == nil {
		t.Error("Occurrences with empty input should fail")
	}
	long, _ := dna.TransposeGroupNaive[uint32]([]dna.Seq{dna.MustParse("ACGTA")})
	short, _ := dna.TransposeGroupNaive[uint32]([]dna.Seq{dna.MustParse("AC")})
	if _, err := Bulk(long, short); err == nil {
		t.Error("Bulk with m > n should fail")
	}
}

func TestBulkLaneCountMismatch(t *testing.T) {
	a, _ := dna.TransposeGroupNaive[uint32]([]dna.Seq{dna.MustParse("AC")})
	b, _ := dna.TransposeGroupNaive[uint32]([]dna.Seq{dna.MustParse("ACGT"), dna.MustParse("ACGT")})
	if _, err := Bulk(a, b); err == nil {
		t.Error("lane-count mismatch should fail")
	}
}

func TestApproxStraightforward(t *testing.T) {
	x := dna.MustParse("ACGT")
	y := dna.MustParse("ACGTACTTTTTT")
	d, err := ApproxStraightforward(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 {
		t.Errorf("offset 0: %d mismatches, want 0", d[0])
	}
	if d[4] != 1 { // ACTT vs ACGT: one mismatch at position 2
		t.Errorf("offset 4: %d mismatches, want 1", d[4])
	}
	if _, err := ApproxStraightforward(nil, y); err == nil {
		t.Error("empty pattern should fail")
	}
}

func TestApproxBulkMatchesStraightforward(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m := 1 + rng.IntN(10)
		n := m + rng.IntN(30)
		xs := make([]dna.Seq, 32)
		ys := make([]dna.Seq, 32)
		for k := range xs {
			xs[k] = dna.RandSeq(rng, m)
			ys[k] = dna.RandSeq(rng, n)
		}
		tx, _ := dna.TransposeGroupNaive[uint32](xs)
		ty, _ := dna.TransposeGroupNaive[uint32](ys)
		res, err := ApproxBulk(tx, ty)
		if err != nil {
			return false
		}
		for k := 0; k < 32; k++ {
			d, _ := ApproxStraightforward(xs[k], ys[k])
			for j := range d {
				if res.CountAt(k, j) != d[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestApproxBulkWithinK(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := 16
	xs := make([]dna.Seq, 32)
	ys := make([]dna.Seq, 32)
	for k := range xs {
		xs[k] = dna.RandSeq(rng, m)
		ys[k] = dna.RandSeq(rng, 100)
		// Plant a copy with exactly 2 substitutions at offset 10.
		planted := dna.MutationModel{SubRate: 0}.Mutate(rng, xs[k])
		planted[3] = planted[3] ^ 1
		planted[7] = planted[7] ^ 2
		copy(ys[k][10:], planted)
	}
	tx, _ := dna.TransposeGroupNaive[uint32](xs)
	ty, _ := dna.TransposeGroupNaive[uint32](ys)
	res, err := ApproxBulk(tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 32; k++ {
		if got := res.CountAt(k, 10); got != 2 {
			t.Errorf("lane %d: planted count = %d, want 2", k, got)
		}
		if !res.WithinK(k, 10, 2) || res.WithinK(k, 10, 1) {
			t.Errorf("lane %d: WithinK thresholds wrong", k)
		}
	}
	if _, err := ApproxBulk(ty, tx); err == nil {
		t.Error("ApproxBulk with m > n should fail")
	}
}

func BenchmarkBulk32(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	xs := make([]dna.Seq, 32)
	ys := make([]dna.Seq, 32)
	for k := range xs {
		xs[k] = dna.RandSeq(rng, 16)
		ys[k] = dna.RandSeq(rng, 1024)
	}
	tx, _ := dna.TransposeGroup[uint32](xs)
	ty, _ := dna.TransposeGroup[uint32](ys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Bulk(tx, ty); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStraightforward(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 8))
	x := dna.RandSeq(rng, 16)
	y := dna.RandSeq(rng, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Straightforward(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
