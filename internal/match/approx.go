package match

import (
	"fmt"

	"repro/internal/bitslice"
	"repro/internal/dna"
	"repro/internal/word"
)

// ApproxStraightforward counts, for every offset j, the number of mismatched
// positions between X and Y[j:j+m] — the Hamming-distance profile used by
// k-mismatch approximate matching.
func ApproxStraightforward(x, y dna.Seq) ([]int, error) {
	m, n := len(x), len(y)
	if m == 0 || m > n {
		return nil, fmt.Errorf("match: need 0 < len(x) <= len(y), got %d, %d", m, n)
	}
	d := make([]int, n-m+1)
	for j := 0; j <= n-m; j++ {
		for i := 0; i < m; i++ {
			if x[i] != y[i+j] {
				d[j]++
			}
		}
	}
	return d, nil
}

// ApproxResult holds per-offset mismatch counts in bit-sliced form: counts
// is indexed by offset, and each entry is an s-plane number whose lane k is
// the mismatch count of lane k at that offset.
type ApproxResult[W word.Word] struct {
	Counts []bitslice.Num[W]
	S      int
	Lanes  int
}

// CountAt returns lane k's mismatch count at offset j.
func (r *ApproxResult[W]) CountAt(k, j int) int {
	return int(r.Counts[j].Get(k))
}

// WithinK reports whether lane k's pattern matches at offset j with at most
// kMax mismatches.
func (r *ApproxResult[W]) WithinK(k, j, kMax int) bool {
	return r.CountAt(k, j) <= kMax
}

// ApproxBulk runs k-mismatch matching for all lanes at once: for each offset
// it accumulates the per-lane mismatch count with a bit-sliced increment,
// using the same mismatch flag as the exact matcher. The counter width s is
// chosen to hold m (the worst case of all positions mismatching).
func ApproxBulk[W word.Word](xs, ys *dna.Transposed[W]) (*ApproxResult[W], error) {
	m, n := xs.Len(), ys.Len()
	if m == 0 || m > n {
		return nil, fmt.Errorf("match: need 0 < m <= n, got %d, %d", m, n)
	}
	s := bitslice.RequiredBits(1, m)
	res := &ApproxResult[W]{S: s, Lanes: word.Lanes[W]()}
	res.Counts = make([]bitslice.Num[W], n-m+1)
	for j := 0; j <= n-m; j++ {
		count := bitslice.NewNum[W](s)
		for i := 0; i < m; i++ {
			e := bitslice.MismatchMask(xs.H[i], xs.L[i], ys.H[i+j], ys.L[i+j])
			// Add the 1-bit value e to the counter: a conditional
			// increment expressed as bit-sliced addition with a carry
			// seeded by e.
			carry := e
			for h := 0; h < s && carry != 0; h++ {
				nc := count[h] & carry
				count[h] ^= carry
				carry = nc
			}
		}
		res.Counts[j] = count
	}
	return res, nil
}
