package match_test

import (
	"fmt"

	"repro/internal/dna"
	"repro/internal/match"
)

// ExampleBulkSeqs runs the paper's §II four-lane worked example.
func ExampleBulkSeqs() {
	xs := []dna.Seq{
		dna.MustParse("ATCGA"), dna.MustParse("TCGAC"),
		dna.MustParse("AAAAA"), dna.MustParse("TTTTT"),
	}
	ys := []dna.Seq{
		dna.MustParse("AATCGACA"), dna.MustParse("AATCGACA"),
		dna.MustParse("AAAAAAAA"), dna.MustParse("AATTTTTT"),
	}
	res, err := match.BulkSeqs[uint32](xs, ys)
	if err != nil {
		panic(err)
	}
	for k := range xs {
		fmt.Printf("lane %d: occurrences at %v\n", k, res.LaneOffsets(k))
	}
	// Output:
	// lane 0: occurrences at [1]
	// lane 1: occurrences at [2]
	// lane 2: occurrences at [0 1 2 3]
	// lane 3: occurrences at [2 3]
}

// ExampleStraightforward reproduces the §II prose example.
func ExampleStraightforward() {
	d, err := match.Straightforward(dna.MustParse("ATTCG"), dna.MustParse("AAATTCGGGA"))
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output:
	// [1 1 0 1 1 1]
}
