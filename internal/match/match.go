// Package match implements §II of the paper: the straightforward O(mn)
// string-matching algorithm and its BPBC (bit-transpose, bitwise-parallel)
// bulk counterpart that solves the same problem for all lanes of a word at
// once, plus the k-mismatch (approximate matching) extension the paper
// mentions as the natural generalisation. It exists both as the paper's
// pedagogical introduction to BPBC and as an independently useful bulk
// exact-match screen.
package match

import (
	"fmt"

	"repro/internal/dna"
	"repro/internal/word"
)

// Straightforward runs the paper's "[Straightforward string matching]":
// d[j] = 0 iff X occurs in Y at offset j; otherwise d[j] = 1.
// It returns the d array of length n-m+1. m must be <= n and positive.
func Straightforward(x, y dna.Seq) ([]uint8, error) {
	m, n := len(x), len(y)
	if m == 0 || m > n {
		return nil, fmt.Errorf("match: need 0 < len(x) <= len(y), got %d, %d", m, n)
	}
	d := make([]uint8, n-m+1)
	for j := 0; j <= n-m; j++ {
		for i := 0; i < m; i++ {
			if x[i] != y[i+j] {
				d[j] = 1
			}
		}
	}
	return d, nil
}

// Occurrences returns the offsets where X occurs exactly in Y.
func Occurrences(x, y dna.Seq) ([]int, error) {
	d, err := Straightforward(x, y)
	if err != nil {
		return nil, err
	}
	var out []int
	for j, v := range d {
		if v == 0 {
			out = append(out, j)
		}
	}
	return out, nil
}

// BulkResult is the outcome of a BPBC bulk match: D[j] holds, per lane, the
// bit 0 iff that lane's pattern occurs at offset j in that lane's text.
type BulkResult[W word.Word] struct {
	D     []W
	Count int // number of real lanes
}

// MatchAt reports whether lane k's pattern matches at offset j.
func (r *BulkResult[W]) MatchAt(k, j int) bool {
	return r.D[j]>>uint(k)&1 == 0
}

// LaneOffsets returns the match offsets for lane k.
func (r *BulkResult[W]) LaneOffsets(k int) []int {
	var out []int
	for j := range r.D {
		if r.MatchAt(k, j) {
			out = append(out, j)
		}
	}
	return out
}

// Bulk runs the paper's "[BPBC straightforward string matching]" over up to
// W lanes: xs and ys are the bit-transposed pattern and text groups (all
// patterns length m, all texts length n). Each inner step costs 5 bitwise
// operations regardless of lane count:
//
//	d[j] |= (xH[i] ^ yH[i+j]) | (xL[i] ^ yL[i+j])
func Bulk[W word.Word](xs, ys *dna.Transposed[W]) (*BulkResult[W], error) {
	m, n := xs.Len(), ys.Len()
	if m == 0 || m > n {
		return nil, fmt.Errorf("match: need 0 < m <= n, got %d, %d", m, n)
	}
	if xs.Count != ys.Count {
		return nil, fmt.Errorf("match: pattern group has %d lanes, text group %d", xs.Count, ys.Count)
	}
	d := make([]W, n-m+1)
	for j := 0; j <= n-m; j++ {
		var dj W
		for i := 0; i < m; i++ {
			dj |= (xs.H[i] ^ ys.H[i+j]) | (xs.L[i] ^ ys.L[i+j])
		}
		d[j] = dj
	}
	return &BulkResult[W]{D: d, Count: xs.Count}, nil
}

// BulkSeqs is the convenience form of Bulk for wordwise inputs: it
// bit-transposes the groups and runs the bulk match.
func BulkSeqs[W word.Word](xs, ys []dna.Seq) (*BulkResult[W], error) {
	tx, err := dna.TransposeGroup[W](xs)
	if err != nil {
		return nil, err
	}
	ty, err := dna.TransposeGroup[W](ys)
	if err != nil {
		return nil, err
	}
	return Bulk(tx, ty)
}
