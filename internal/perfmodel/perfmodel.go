// Package perfmodel provides the performance model that substitutes for the
// paper's physical hardware (GeForce GTX TITAN X + Intel Core i7-6700, see
// DESIGN.md §2). It converts the exact operation and memory-traffic counts
// produced by the cudasim functional simulator into wall-clock estimates,
// and models the PCIe transfers of the paper's Table IV (H2G/G2H columns).
//
// Calibration notes (documented, not hidden): the paper's per-cell bitwise
// operation counts exceed the instructions a Maxwell GPU actually issues,
// because LOP3.LUT fuses arbitrary three-input boolean functions into one
// instruction. The model therefore applies a logic-fusion factor to ALU op
// counts. With the factor below, the model lands within ~15% of every GPU
// cell of the paper's Table IV; see EXPERIMENTS.md for the side-by-side.
package perfmodel

import (
	"fmt"
	"time"
)

// DeviceSpec describes a GPU for the timing model.
type DeviceSpec struct {
	Name       string
	SMs        int
	CoresPerSM int
	ClockHz    float64
	WarpSize   int
	// IPC is sustained simple-ALU instructions per core per cycle.
	IPC float64
	// LogicFusion is the average number of issued instructions per counted
	// bitwise operation (< 1 because LOP3 fuses 2-3 logic ops into one).
	LogicFusion float64
	// GlobalBandwidth is sustained DRAM bandwidth in bytes/second.
	GlobalBandwidth float64
	// SharedBytesPerCycle is shared-memory bandwidth per SM per cycle.
	SharedBytesPerCycle float64
	// KernelLaunchOverhead is charged once per kernel launch.
	KernelLaunchOverhead time.Duration
	// MaxThreadsPerSM bounds occupancy.
	MaxThreadsPerSM int
	// RegistersPerSM bounds occupancy by register pressure.
	RegistersPerSM int
	// ThreadsForPeak is the resident-thread count per SM needed to fully
	// hide ALU latency; below it, sustained issue rate degrades linearly.
	ThreadsForPeak int
}

// Cores returns the total core count.
func (d DeviceSpec) Cores() int { return d.SMs * d.CoresPerSM }

// InstrRate returns sustained instructions per second across the device.
func (d DeviceSpec) InstrRate() float64 {
	return float64(d.Cores()) * d.ClockHz * d.IPC
}

// TitanX models the paper's GPU using the figures the paper itself states
// (28 SMs × 128 cores) plus public TITAN X parameters.
var TitanX = DeviceSpec{
	Name:                 "GeForce GTX TITAN X (as described in the paper)",
	SMs:                  28,
	CoresPerSM:           128,
	ClockHz:              1.0e9,
	WarpSize:             32,
	IPC:                  1.0,
	LogicFusion:          0.42, // LOP3.LUT fusion of 3-input boolean ops
	GlobalBandwidth:      300e9,
	SharedBytesPerCycle:  128,
	KernelLaunchOverhead: 8 * time.Microsecond,
	MaxThreadsPerSM:      2048,
	RegistersPerSM:       65536,
	ThreadsForPeak:       1024,
}

// TitanXHalf is a derived spec with half the SMs and DRAM bandwidth of
// TitanX — a stand-in for a smaller card in a heterogeneous fleet.
var TitanXHalf = func() DeviceSpec {
	d := TitanX
	d.Name = "TITAN X (half: 14 SMs)"
	d.SMs = 14
	d.GlobalBandwidth = 150e9
	return d
}()

// TitanXQuarter is a derived spec with a quarter of the SMs and DRAM
// bandwidth of TitanX — the weakest fleet member used in tests.
var TitanXQuarter = func() DeviceSpec {
	d := TitanX
	d.Name = "TITAN X (quarter: 7 SMs)"
	d.SMs = 7
	d.GlobalBandwidth = 75e9
	return d
}()

// SpecByName resolves a short spec name ("titanx", "titanx-half",
// "titanx-quarter") to its DeviceSpec, for CLI flags that assemble
// heterogeneous fleets.
func SpecByName(name string) (DeviceSpec, bool) {
	switch name {
	case "titanx":
		return TitanX, true
	case "titanx-half":
		return TitanXHalf, true
	case "titanx-quarter":
		return TitanXQuarter, true
	}
	return DeviceSpec{}, false
}

// SpecNames lists the names SpecByName accepts, for flag usage strings.
func SpecNames() []string {
	return []string{"titanx", "titanx-half", "titanx-quarter"}
}

// PCIeLink models the host-device interconnect.
type PCIeLink struct {
	Latency   time.Duration
	Bandwidth float64 // bytes/second
}

// PaperPCIe reproduces the effective transfer rate implied by the paper's
// H2G column (≈37.7 MB in 5.51 ms at n=1024 ⇒ ≈6.9 GB/s, PCIe gen3 x16).
var PaperPCIe = PCIeLink{Latency: 12 * time.Microsecond, Bandwidth: 6.9e9}

// Transfer returns the modelled time to move n bytes across the link.
func (l PCIeLink) Transfer(bytes int64) time.Duration {
	if bytes < 0 {
		panic("perfmodel: negative transfer size")
	}
	return l.Latency + time.Duration(float64(bytes)/l.Bandwidth*float64(time.Second))
}

// KernelCost aggregates the work one kernel launch performs, as counted by
// the functional simulator (exact, per DESIGN.md the counts are measured on
// a representative block and scaled by the block count, which is exact for
// data-independent kernels like these).
type KernelCost struct {
	// ALUOps is the total bitwise/arithmetic operation count across all
	// threads.
	ALUOps int64
	// FuseLogic marks kernels whose ALU stream is long chains of 2-input
	// boolean operations, which the hardware's LOP3.LUT compresses by the
	// device's LogicFusion factor. Integer-arithmetic kernels (the
	// wordwise baseline) leave it false.
	FuseLogic bool
	// GlobalBytes is total DRAM traffic (reads + writes, after coalescing).
	GlobalBytes int64
	// SharedBytes is total shared-memory traffic including bank-conflict
	// replays.
	SharedBytes int64
	// Blocks and ThreadsPerBlock describe the launch shape.
	Blocks          int
	ThreadsPerBlock int
	// RegsPerThread is the kernel's register footprint in 32-bit registers
	// (0 = negligible). High footprints reduce resident threads per SM and
	// with them the latency hiding the issue pipelines depend on — the
	// mechanism behind the paper's 64-bit GPU penalty (Table IV).
	RegsPerThread int
}

// Time converts the cost to a wall-clock estimate on the device: the kernel
// is limited by whichever of ALU throughput, DRAM bandwidth, or shared
// bandwidth binds, with a launch overhead and an occupancy-derived tail
// correction when there are too few blocks to fill the machine.
func (c KernelCost) Time(d DeviceSpec) time.Duration {
	if c.Blocks == 0 || c.ThreadsPerBlock == 0 {
		return 0
	}
	instr := float64(c.ALUOps)
	if c.FuseLogic {
		instr *= d.LogicFusion
	}

	// Occupancy: how many cores the launch can actually keep busy. A block
	// occupies min(threads, available) lanes; resident blocks per SM are
	// bounded by the thread limit and by register pressure.
	threadLimit := d.MaxThreadsPerSM
	if c.RegsPerThread > 0 && d.RegistersPerSM > 0 {
		threadLimit = min(threadLimit, d.RegistersPerSM/c.RegsPerThread)
	}
	blocksPerSM := threadLimit / c.ThreadsPerBlock
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	resident := min(c.Blocks, d.SMs*blocksPerSM)
	activeThreads := resident * c.ThreadsPerBlock
	effCores := min(activeThreads, d.Cores())
	if effCores < 1 {
		effCores = 1
	}
	// Latency hiding: when register pressure caps resident threads per SM
	// below what the issue pipelines need, dependent instructions stall.
	issue := 1.0
	if d.ThreadsForPeak > 0 {
		if perSM := blocksPerSM * c.ThreadsPerBlock; perSM < d.ThreadsForPeak {
			issue = float64(perSM) / float64(d.ThreadsForPeak)
		}
	}
	alu := instr / (float64(effCores) * d.ClockHz * d.IPC * issue)

	mem := float64(c.GlobalBytes) / d.GlobalBandwidth
	// Shared bandwidth scales with the SMs actually hosting blocks.
	activeSMs := min(d.SMs, resident)
	shared := float64(c.SharedBytes) / (float64(activeSMs) * d.SharedBytesPerCycle * d.ClockHz)
	t := max(alu, mem, shared)
	return d.KernelLaunchOverhead + time.Duration(t*float64(time.Second))
}

// CPUSpec models the sequential baseline processor. The CPU columns of our
// Table IV are measured (real Go code, real wall clock); CPUSpec exists to
// rescale measurements taken at a reduced workload up to the paper's
// workload (time is linear in the pair count) and to sanity-check them.
type CPUSpec struct {
	Name    string
	ClockHz float64
}

// PaperCPU is the paper's Intel Core i7-6700.
var PaperCPU = CPUSpec{Name: "Intel Core i7-6700", ClockHz: 3.6e9}

// GCUPS returns billions of cell updates per second for a workload of
// `pairs` alignments of an m×n matrix completed in t.
func GCUPS(pairs, m, n int, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	cells := float64(pairs) * float64(m) * float64(n)
	return cells / t.Seconds() / 1e9
}

// Scale linearly rescales a measured duration from `measured` pairs to
// `target` pairs. It panics on a non-positive measured count, which would
// silently produce zero estimates.
func Scale(t time.Duration, measured, target int) time.Duration {
	if measured <= 0 {
		panic(fmt.Sprintf("perfmodel: Scale with measured=%d", measured))
	}
	return time.Duration(float64(t) * float64(target) / float64(measured))
}
