package perfmodel

import (
	"testing"
	"time"
)

func TestDeviceSpecDerived(t *testing.T) {
	if TitanX.Cores() != 28*128 {
		t.Errorf("Cores = %d, want 3584 (paper: 28 SMs × 128 cores)", TitanX.Cores())
	}
	if TitanX.InstrRate() != float64(3584)*1e9 {
		t.Errorf("InstrRate = %g", TitanX.InstrRate())
	}
}

func TestPCIeTransfer(t *testing.T) {
	// The paper's H2G at n=1024: 32768×1152 bytes in ≈5.5 ms.
	bytes := int64(32768) * 1152
	got := PaperPCIe.Transfer(bytes)
	if got < 5*time.Millisecond || got > 6*time.Millisecond {
		t.Errorf("H2G model = %v, paper says 5.51 ms", got)
	}
	// Latency floor.
	if PaperPCIe.Transfer(0) != PaperPCIe.Latency {
		t.Error("zero-byte transfer should cost the latency")
	}
}

func TestPCIeTransferPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	PaperPCIe.Transfer(-1)
}

func TestKernelCostALUBound(t *testing.T) {
	c := KernelCost{
		ALUOps:          1 << 40,
		FuseLogic:       true,
		Blocks:          4096,
		ThreadsPerBlock: 128,
	}
	got := c.Time(TitanX)
	want := float64(1<<40) * TitanX.LogicFusion / TitanX.InstrRate()
	if diff := got.Seconds() - want - TitanX.KernelLaunchOverhead.Seconds(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("ALU-bound time = %v, want ≈%gs", got, want)
	}
}

func TestKernelCostMemoryBound(t *testing.T) {
	c := KernelCost{
		ALUOps:          1,
		GlobalBytes:     int64(TitanX.GlobalBandwidth), // one second of traffic
		Blocks:          4096,
		ThreadsPerBlock: 128,
	}
	got := c.Time(TitanX)
	if got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("memory-bound time = %v, want ≈1s", got)
	}
}

func TestKernelCostOccupancyPenalty(t *testing.T) {
	base := KernelCost{ALUOps: 1 << 34, FuseLogic: true, ThreadsPerBlock: 128}
	full := base
	full.Blocks = 10000
	tiny := base
	tiny.Blocks = 1
	tf, tt := full.Time(TitanX), tiny.Time(TitanX)
	if tt <= tf {
		t.Errorf("single-block launch (%v) should be slower than full launch (%v)", tt, tf)
	}
	// One block of 128 threads runs on 128 cores: 28× fewer than the chip.
	ratio := float64(tt-TitanX.KernelLaunchOverhead) / float64(tf-TitanX.KernelLaunchOverhead)
	if ratio < 20 || ratio > 36 {
		t.Errorf("occupancy ratio = %.1f, want ≈28", ratio)
	}
}

func TestKernelCostZeroLaunch(t *testing.T) {
	if (KernelCost{}).Time(TitanX) != 0 {
		t.Error("empty launch should cost nothing")
	}
}

func TestFusionOnlyAffectsFusedKernels(t *testing.T) {
	c := KernelCost{ALUOps: 1 << 36, Blocks: 10000, ThreadsPerBlock: 128}
	unfused := c.Time(TitanX)
	c.FuseLogic = true
	fused := c.Time(TitanX)
	if fused >= unfused {
		t.Errorf("fused (%v) should be faster than unfused (%v)", fused, unfused)
	}
}

func TestGCUPS(t *testing.T) {
	// 32768 pairs × 128 × 1024 cells in 12.66 ms ⇒ ≈339 GCUPS (what the
	// paper's own Table IV/V arithmetic implies; see EXPERIMENTS.md).
	got := GCUPS(32768, 128, 1024, 12660*time.Microsecond)
	if got < 330 || got < 0 || got > 350 {
		t.Errorf("GCUPS = %.1f, want ≈339", got)
	}
	if GCUPS(1, 1, 1, 0) != 0 {
		t.Error("zero duration should yield 0 GCUPS")
	}
}

func TestScale(t *testing.T) {
	if got := Scale(10*time.Millisecond, 32, 32768); got != 10*time.Second+240*time.Millisecond {
		t.Errorf("Scale = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scale with measured=0 did not panic")
		}
	}()
	Scale(time.Second, 0, 10)
}
