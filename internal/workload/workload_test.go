package workload

import (
	"testing"

	"repro/internal/swa"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"paper", "quick", "unit"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestPaperSpecMatchesEvaluationSection(t *testing.T) {
	if Paper.Pairs != 32768 {
		t.Errorf("paper pairs = %d, want 32768 (32K)", Paper.Pairs)
	}
	if Paper.M != 128 {
		t.Errorf("paper m = %d, want 128", Paper.M)
	}
	want := []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}
	if len(Paper.NList) != len(want) {
		t.Fatalf("paper n sweep has %d entries", len(Paper.NList))
	}
	for i, n := range want {
		if Paper.NList[i] != n {
			t.Errorf("n[%d] = %d, want %d", i, Paper.NList[i], n)
		}
	}
}

func TestGenerateDeterministicAndShaped(t *testing.T) {
	a := Unit.Generate(128)
	b := Unit.Generate(128)
	if len(a) != Unit.Pairs {
		t.Fatalf("generated %d pairs", len(a))
	}
	for i := range a {
		if len(a[i].X) != Unit.M || len(a[i].Y) != 128 {
			t.Fatalf("pair %d has shape (%d,%d)", i, len(a[i].X), len(a[i].Y))
		}
		if !a[i].X.Equal(b[i].X) || !a[i].Y.Equal(b[i].Y) {
			t.Fatalf("generation not deterministic at pair %d", i)
		}
	}
	// Different n must give different data.
	c := Unit.Generate(256)
	if a[0].X.Equal(c[0].X) {
		t.Error("different n should reseed the generator")
	}
}

func TestGenerateScreenPlantsHomologs(t *testing.T) {
	pairs := Unit.GenerateScreen(256, 1.0)
	tau := swa.PaperScoring.MaxScore(Unit.M) / 2
	hits := 0
	for _, p := range pairs {
		if swa.Score(p.X, p.Y, swa.PaperScoring) > tau {
			hits++
		}
	}
	if hits < len(pairs)*9/10 {
		t.Errorf("only %d/%d planted pairs exceed tau", hits, len(pairs))
	}
}

func TestValidate(t *testing.T) {
	for _, name := range []string{"paper", "quick", "unit"} {
		s, _ := ByName(name)
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q fails validation: %v", name, err)
		}
	}
	bad := []struct {
		name string
		spec Spec
	}{
		{"zero pairs", Spec{Pairs: 0, M: 8, NList: []int{16}}},
		{"negative pairs", Spec{Pairs: -1, M: 8, NList: []int{16}}},
		{"zero m", Spec{Pairs: 4, M: 0, NList: []int{16}}},
		{"negative m", Spec{Pairs: 4, M: -8, NList: []int{16}}},
		{"empty nlist", Spec{Pairs: 4, M: 8, NList: nil}},
		{"zero n", Spec{Pairs: 4, M: 8, NList: []int{16, 0}}},
		{"negative n", Spec{Pairs: 4, M: 8, NList: []int{-16}}},
		{"n shorter than m", Spec{Pairs: 4, M: 8, NList: []int{4}}},
	}
	for _, tc := range bad {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.spec)
		}
	}
}

func TestCells(t *testing.T) {
	if got := Paper.Cells(1024); got != 32768*128*1024 {
		t.Errorf("Cells = %d", got)
	}
}
