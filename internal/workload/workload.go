// Package workload defines the experiment workloads of the paper's
// evaluation (§VI) and the scaled-down presets this reproduction uses for
// interactive runs: the paper's CPU columns alone take hours at full scale.
package workload

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dna"
)

// Spec describes one evaluation workload.
type Spec struct {
	Name  string
	Pairs int   // number of (X, Y) pairs
	M     int   // pattern length (the paper fixes 128)
	NList []int // text lengths to sweep
	Seed  uint64
}

// Paper is the full workload of the paper's Table IV/V: 32K pairs, m = 128,
// n = 1024 … 65536.
var Paper = Spec{
	Name:  "paper",
	Pairs: 32768,
	M:     128,
	NList: []int{1024, 2048, 4096, 8192, 16384, 32768, 65536},
	Seed:  20170529, // IPDPS Workshops 2017 opening day
}

// Quick is the scaled preset used by default: the same m and the same n
// sweep shape (three octaves), 1/256 of the pairs. GCUPS figures are
// directly comparable; absolute times are rescaled via perfmodel.Scale.
var Quick = Spec{
	Name:  "quick",
	Pairs: 128,
	M:     128,
	NList: []int{1024, 2048, 4096},
	Seed:  20170529,
}

// Unit is a tiny preset for tests.
var Unit = Spec{
	Name:  "unit",
	Pairs: 64,
	M:     32,
	NList: []int{128, 256},
	Seed:  7,
}

// Validate rejects specs that would generate a degenerate or unrunnable
// workload: non-positive Pairs or M, an empty NList, or text lengths that
// are non-positive or shorter than the pattern (the pipeline requires
// n ≥ m). Server request presets call this before generating anything.
func (s Spec) Validate() error {
	if s.Pairs <= 0 {
		return fmt.Errorf("workload %q: Pairs must be positive, got %d", s.Name, s.Pairs)
	}
	if s.M <= 0 {
		return fmt.Errorf("workload %q: M must be positive, got %d", s.Name, s.M)
	}
	if len(s.NList) == 0 {
		return fmt.Errorf("workload %q: NList must not be empty", s.Name)
	}
	for i, n := range s.NList {
		if n <= 0 {
			return fmt.Errorf("workload %q: NList[%d] must be positive, got %d", s.Name, i, n)
		}
		if n < s.M {
			return fmt.Errorf("workload %q: NList[%d] = %d is shorter than the pattern (m = %d)", s.Name, i, n, s.M)
		}
	}
	return nil
}

// ByName resolves a preset name.
func ByName(name string) (Spec, error) {
	switch name {
	case "paper":
		return Paper, nil
	case "quick":
		return Quick, nil
	case "unit":
		return Unit, nil
	}
	return Spec{}, fmt.Errorf("workload: unknown preset %q (want paper, quick or unit)", name)
}

// Generate produces the pair batch for one n of the sweep. Pairs are
// uniformly random DNA (the paper's setting); generation is deterministic in
// (Seed, n).
func (s Spec) Generate(n int) []dna.Pair {
	rng := rand.New(rand.NewPCG(s.Seed, uint64(n)))
	return dna.RandomPairs(rng, s.Pairs, s.M, n)
}

// GenerateScreen produces a screening workload with planted homologies, used
// by the database-filter example and benches.
func (s Spec) GenerateScreen(n int, plantFrac float64) []dna.Pair {
	rng := rand.New(rand.NewPCG(s.Seed+1, uint64(n)))
	return dna.PlantedPairs(rng, s.Pairs, s.M, n, plantFrac,
		dna.MutationModel{SubRate: 0.05, InsRate: 0.01, DelRate: 0.01})
}

// Cells returns the total cell-update count for one n.
func (s Spec) Cells(n int) int64 {
	return int64(s.Pairs) * int64(s.M) * int64(n)
}
