package core

import (
	"fmt"

	"repro/internal/bpbc"
	"repro/internal/swa"
)

// AffineScoring re-exports the Gotoh affine-gap scheme.
type AffineScoring = swa.AffineScoring

// PosResult is a bulk result with best-cell coordinates.
type PosResult struct {
	Scores []int
	// EndI[i], EndJ[i] are the 1-based matrix coordinates of the first
	// cell attaining Scores[i] (0,0 when the score is 0).
	EndI, EndJ []int
}

// BulkWithPositions scores every pair and reports where each maximum
// occurs, enabling banded re-alignment around the hit (see AlignBanded).
func BulkWithPositions(pairs []Pair, opt BulkOptions) (*PosResult, error) {
	dp, err := parsePairs(pairs)
	if err != nil {
		return nil, err
	}
	o := bpbc.Options{Scoring: opt.Scoring, Workers: opt.Workers}
	var r *bpbc.PosResult
	switch opt.Lanes {
	case 0, 32:
		r, err = bpbc.BulkScoresPos[uint32](dp, o)
	case 64:
		r, err = bpbc.BulkScoresPos[uint64](dp, o)
	default:
		return nil, fmt.Errorf("core: Lanes must be 32 or 64, got %d", opt.Lanes)
	}
	if err != nil {
		return nil, err
	}
	return &PosResult{Scores: r.Scores, EndI: r.EndI, EndJ: r.EndJ}, nil
}

// BulkAffine scores every pair under affine gaps with the bit-sliced Gotoh
// engine (beyond-paper extension).
func BulkAffine(pairs []Pair, sc AffineScoring, lanes int) (*BulkResult, error) {
	dp, err := parsePairs(pairs)
	if err != nil {
		return nil, err
	}
	o := bpbc.AffineOptions{Scoring: sc}
	var r *bpbc.Result
	switch lanes {
	case 0, 32:
		r, err = bpbc.BulkScoresAffine[uint32](dp, o)
	case 64:
		r, err = bpbc.BulkScoresAffine[uint64](dp, o)
	default:
		return nil, fmt.Errorf("core: lanes must be 32 or 64, got %d", lanes)
	}
	if err != nil {
		return nil, err
	}
	return &BulkResult{Scores: r.Scores, Timing: r.Timing}, nil
}

// BulkAlign scores every pair and reconstructs each optimal alignment from
// the bit-transposed traceback planes recorded alongside the scoring pass.
// The matrix size is capped; for long texts use BulkWithPositions +
// AlignBanded.
func BulkAlign(pairs []Pair, opt BulkOptions) ([]Alignment, error) {
	dp, err := parsePairs(pairs)
	if err != nil {
		return nil, err
	}
	o := bpbc.Options{Scoring: opt.Scoring}
	switch opt.Lanes {
	case 0, 32:
		return bpbc.BulkAlign[uint32](dp, o)
	case 64:
		return bpbc.BulkAlign[uint64](dp, o)
	}
	return nil, fmt.Errorf("core: Lanes must be 32 or 64, got %d", opt.Lanes)
}

// Band re-exports the banded-alignment window.
type Band = swa.Band

// AlignBanded aligns x and y inside a diagonal band — the fast follow-up to
// a BulkWithPositions hit (band offset = EndJ - EndI).
func AlignBanded(x, y string, sc Scoring, band Band) (Alignment, error) {
	xs, err := parseSeq(x)
	if err != nil {
		return Alignment{}, err
	}
	ys, err := parseSeq(y)
	if err != nil {
		return Alignment{}, err
	}
	if err := sc.Validate(); err != nil {
		return Alignment{}, err
	}
	return swa.AlignBanded(xs, ys, sc, band)
}
