package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleAlign reproduces the paper's Table II example.
func ExampleAlign() {
	a, err := core.Align("TACTG", "GAACTGA", core.PaperScoring)
	if err != nil {
		panic(err)
	}
	fmt.Println(a.Score)
	fmt.Println(a.AlignedX)
	fmt.Println(a.AlignedY)
	// Output:
	// 8
	// ACTG
	// ACTG
}

// ExampleBulk scores three identical-shape pairs in one BPBC sweep.
func ExampleBulk() {
	pairs := []core.Pair{
		{X: "ACGT", Y: "TTACGTTT"},
		{X: "ACGT", Y: "TTACCTTT"},
		{X: "ACGT", Y: "GGGGGGGG"},
	}
	res, err := core.Bulk(pairs, core.BulkOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scores)
	// Output:
	// [8 5 2]
}

// ExampleScreen runs the paper's use case: screen, then align survivors.
func ExampleScreen() {
	pairs := []core.Pair{
		{X: "ACGTACGT", Y: "TTTTACGTACGTTTTT"}, // perfect hit
		{X: "ACGTACGT", Y: "CCCCCCCCCCCCCCCC"}, // noise
	}
	hits, err := core.Screen(pairs, 10, core.BulkOptions{})
	if err != nil {
		panic(err)
	}
	for _, h := range hits {
		fmt.Printf("pair %d scored %d\n", h.Index, h.Score)
	}
	// Output:
	// pair 0 scored 16
}

// ExampleBulkWithPositions locates where each best alignment ends.
func ExampleBulkWithPositions() {
	pairs := []core.Pair{{X: "ACGT", Y: "GGGGACGTGG"}}
	res, err := core.BulkWithPositions(pairs, core.BulkOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("score %d ends at row %d, column %d\n",
		res.Scores[0], res.EndI[0], res.EndJ[0])
	// Output:
	// score 8 ends at row 4, column 8
}
