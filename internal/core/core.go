// Package core is the library facade: the paper's primary contribution
// behind one small API. It ties the substrates together —
//
//   - Align / Score: reference Smith-Waterman on two sequences,
//   - Bulk: BPBC bulk scoring of many pairs on the CPU (32 or 64 lanes),
//   - Screen: the paper's use case, a bulk threshold screen followed by
//     detailed alignment of the survivors,
//   - SimulateGPU: the same batch on the simulated GPU pipeline with a
//     Table IV-style stage breakdown.
//
// Sequences enter as plain ACGT strings; everything else is optional
// configuration with the paper's parameters as defaults.
package core

import (
	"context"
	"fmt"

	"repro/internal/bpbc"
	"repro/internal/dna"
	"repro/internal/pipeline"
	"repro/internal/swa"
)

// Scoring re-exports the linear-gap scheme (c1 / c2 / gap magnitudes).
type Scoring = swa.Scoring

// PaperScoring is c1=2, c2=1, gap=1, the paper's configuration.
var PaperScoring = swa.PaperScoring

// Alignment re-exports the reconstructed alignment type.
type Alignment = swa.Alignment

// Pair is one problem instance given as ACGT strings.
type Pair struct {
	X, Y string
}

func parseSeq(s string) (dna.Seq, error) {
	return dna.Parse(s)
}

func parsePairs(pairs []Pair) ([]dna.Pair, error) {
	out := make([]dna.Pair, len(pairs))
	for i, p := range pairs {
		x, err := dna.Parse(p.X)
		if err != nil {
			return nil, fmt.Errorf("core: pair %d pattern: %w", i, err)
		}
		y, err := dna.Parse(p.Y)
		if err != nil {
			return nil, fmt.Errorf("core: pair %d text: %w", i, err)
		}
		out[i] = dna.Pair{X: x, Y: y}
	}
	return out, nil
}

// Score returns the maximum local-alignment score of x against y.
func Score(x, y string, sc Scoring) (int, error) {
	xs, err := dna.Parse(x)
	if err != nil {
		return 0, err
	}
	ys, err := dna.Parse(y)
	if err != nil {
		return 0, err
	}
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	return swa.Score(xs, ys, sc), nil
}

// Align returns the optimal local alignment of x against y with traceback.
func Align(x, y string, sc Scoring) (Alignment, error) {
	xs, err := dna.Parse(x)
	if err != nil {
		return Alignment{}, err
	}
	ys, err := dna.Parse(y)
	if err != nil {
		return Alignment{}, err
	}
	if err := sc.Validate(); err != nil {
		return Alignment{}, err
	}
	return swa.Align(xs, ys, sc), nil
}

// BulkOptions configures bulk scoring.
type BulkOptions struct {
	Scoring Scoring // zero value = PaperScoring
	// Lanes selects the word width: 32 (default) or 64.
	Lanes int
	// Workers > 1 spreads lane groups over goroutines (beyond-paper).
	Workers int
}

// BulkResult is the outcome of a bulk run.
type BulkResult struct {
	// Scores[i] is the maximum score of pairs[i].
	Scores []int
	// Timing is the W2B/SWA/B2W stage breakdown.
	Timing bpbc.Timing
}

// Bulk scores every pair with the BPBC engine. All pairs must share one
// (len(X), len(Y)) shape.
func Bulk(pairs []Pair, opt BulkOptions) (*BulkResult, error) {
	dp, err := parsePairs(pairs)
	if err != nil {
		return nil, err
	}
	o := bpbc.Options{Scoring: opt.Scoring, Workers: opt.Workers}
	var r *bpbc.Result
	switch opt.Lanes {
	case 0, 32:
		r, err = bpbc.BulkScores[uint32](dp, o)
	case 64:
		r, err = bpbc.BulkScores[uint64](dp, o)
	default:
		return nil, fmt.Errorf("core: Lanes must be 32 or 64, got %d", opt.Lanes)
	}
	if err != nil {
		return nil, err
	}
	return &BulkResult{Scores: r.Scores, Timing: r.Timing}, nil
}

// Hit is one pair that survived a Screen.
type Hit struct {
	Index     int
	Score     int
	Alignment Alignment
}

// Screen runs the paper's end-to-end use case: BPBC bulk scoring, keep the
// pairs whose score exceeds tau, and compute their detailed alignments with
// the conventional CPU algorithm.
func Screen(pairs []Pair, tau int, opt BulkOptions) ([]Hit, error) {
	dp, err := parsePairs(pairs)
	if err != nil {
		return nil, err
	}
	o := bpbc.Options{Scoring: opt.Scoring, Workers: opt.Workers}
	var hits []bpbc.ScreenHit
	switch opt.Lanes {
	case 0, 32:
		hits, err = bpbc.ScreenAndAlign[uint32](dp, tau, o)
	case 64:
		hits, err = bpbc.ScreenAndAlign[uint64](dp, tau, o)
	default:
		return nil, fmt.Errorf("core: Lanes must be 32 or 64, got %d", opt.Lanes)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{Index: h.Index, Score: h.Score, Alignment: h.Alignment}
	}
	return out, nil
}

// GPUResult is the outcome of a simulated GPU run.
type GPUResult struct {
	Scores []int
	Times  pipeline.StageTimes
}

// SimulateGPU runs the batch through the paper's five-step GPU pipeline on
// the cudasim substrate, returning exact scores and the modelled
// H2G/W2B/SWA/B2W/G2H stage times. The context cancels the simulated run
// between stages and kernel blocks.
func SimulateGPU(ctx context.Context, pairs []Pair, opt BulkOptions) (*GPUResult, error) {
	dp, err := parsePairs(pairs)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.Config{Scoring: opt.Scoring}
	var r *pipeline.Result
	switch opt.Lanes {
	case 0, 32:
		r, err = pipeline.RunBitwise[uint32](ctx, dp, cfg)
	case 64:
		r, err = pipeline.RunBitwise[uint64](ctx, dp, cfg)
	default:
		return nil, fmt.Errorf("core: Lanes must be 32 or 64, got %d", opt.Lanes)
	}
	if err != nil {
		return nil, err
	}
	return &GPUResult{Scores: r.Scores, Times: r.Times}, nil
}
