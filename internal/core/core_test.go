package core

import (
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/dna"
)

func TestScoreAndAlignPaperExample(t *testing.T) {
	s, err := Score("TACTG", "GAACTGA", PaperScoring)
	if err != nil {
		t.Fatal(err)
	}
	if s != 8 {
		t.Errorf("Score = %d, want 8 (Table II)", s)
	}
	a, err := Align("TACTG", "GAACTGA", PaperScoring)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != 8 || a.AlignedX != "ACTG" {
		t.Errorf("Align = %+v", a)
	}
}

func TestScoreErrors(t *testing.T) {
	if _, err := Score("ACGZ", "ACGT", PaperScoring); err == nil {
		t.Error("invalid pattern should fail")
	}
	if _, err := Score("ACGT", "ACGZ", PaperScoring); err == nil {
		t.Error("invalid text should fail")
	}
	if _, err := Score("AC", "ACGT", Scoring{}); err == nil {
		t.Error("zero scoring should fail validation")
	}
	if _, err := Align("Z", "A", PaperScoring); err == nil {
		t.Error("Align invalid pattern should fail")
	}
	if _, err := Align("A", "Z", PaperScoring); err == nil {
		t.Error("Align invalid text should fail")
	}
	if _, err := Align("A", "A", Scoring{Match: -1}); err == nil {
		t.Error("Align invalid scoring should fail")
	}
}

func randomPairs(count, m, n int) []Pair {
	rng := rand.New(rand.NewPCG(1, 2))
	out := make([]Pair, count)
	for i := range out {
		out[i] = Pair{
			X: dna.RandSeq(rng, m).String(),
			Y: dna.RandSeq(rng, n).String(),
		}
	}
	return out
}

func TestBulkBothLaneWidths(t *testing.T) {
	pairs := randomPairs(40, 12, 60)
	for _, lanes := range []int{0, 32, 64} {
		r, err := Bulk(pairs, BulkOptions{Lanes: lanes})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for i, p := range pairs {
			want, _ := Score(p.X, p.Y, PaperScoring)
			if r.Scores[i] != want {
				t.Fatalf("lanes=%d pair %d: got %d want %d", lanes, i, r.Scores[i], want)
			}
		}
	}
	if _, err := Bulk(pairs, BulkOptions{Lanes: 16}); err == nil {
		t.Error("Lanes=16 should fail")
	}
	if _, err := Bulk([]Pair{{X: "AZ", Y: "AC"}}, BulkOptions{}); err == nil {
		t.Error("invalid sequence should fail")
	}
}

func TestScreenFindsPlantedPair(t *testing.T) {
	pairs := randomPairs(20, 16, 80)
	// Plant pair 5 as a perfect hit.
	pairs[5].Y = strings.Repeat("A", 30) + pairs[5].X + strings.Repeat("C", 80-30-16)
	tau := PaperScoring.MaxScore(16) - 1
	hits, err := Screen(pairs, tau, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.Index == 5 {
			found = true
			if h.Alignment.Score != PaperScoring.MaxScore(16) {
				t.Errorf("planted hit alignment score %d", h.Alignment.Score)
			}
		}
	}
	if !found {
		t.Error("planted pair not screened in")
	}
	if _, err := Screen(pairs, tau, BulkOptions{Lanes: 7}); err == nil {
		t.Error("bad lanes should fail")
	}
	if _, err := Screen([]Pair{{X: "Q", Y: "A"}}, 0, BulkOptions{}); err == nil {
		t.Error("bad sequence should fail")
	}
	if _, err := Screen(pairs, tau, BulkOptions{Lanes: 64}); err != nil {
		t.Errorf("64-lane screen failed: %v", err)
	}
}

func TestSimulateGPUMatchesCPU(t *testing.T) {
	pairs := randomPairs(64, 10, 40)
	for _, lanes := range []int{32, 64} {
		g, err := SimulateGPU(context.Background(), pairs, BulkOptions{Lanes: lanes})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Bulk(pairs, BulkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if g.Scores[i] != c.Scores[i] {
				t.Fatalf("lanes=%d pair %d: GPU %d CPU %d", lanes, i, g.Scores[i], c.Scores[i])
			}
		}
		if g.Times.Total() <= 0 {
			t.Error("GPU stage times missing")
		}
	}
	if _, err := SimulateGPU(context.Background(), pairs, BulkOptions{Lanes: 5}); err == nil {
		t.Error("bad lanes should fail")
	}
	if _, err := SimulateGPU(context.Background(), []Pair{{X: "B", Y: "A"}}, BulkOptions{}); err == nil {
		t.Error("bad sequence should fail")
	}
}

func TestBulkParallelWorkers(t *testing.T) {
	pairs := randomPairs(100, 8, 32)
	seq, err := Bulk(pairs, BulkOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Bulk(pairs, BulkOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Scores {
		if seq.Scores[i] != par.Scores[i] {
			t.Fatalf("worker results differ at %d", i)
		}
	}
}

func TestBulkWithPositions(t *testing.T) {
	pairs := randomPairs(40, 10, 50)
	res, err := BulkWithPositions(pairs, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, _ := Score(p.X, p.Y, PaperScoring)
		if res.Scores[i] != want {
			t.Fatalf("pair %d: score %d want %d", i, res.Scores[i], want)
		}
		if want > 0 && (res.EndI[i] < 1 || res.EndJ[i] < 1) {
			t.Fatalf("pair %d: missing coordinates", i)
		}
	}
	if _, err := BulkWithPositions(pairs, BulkOptions{Lanes: 3}); err == nil {
		t.Error("bad lanes should fail")
	}
	if _, err := BulkWithPositions([]Pair{{X: "Q", Y: "A"}}, BulkOptions{}); err == nil {
		t.Error("bad sequence should fail")
	}
	if _, err := BulkWithPositions(pairs, BulkOptions{Lanes: 64}); err != nil {
		t.Errorf("64-lane positions failed: %v", err)
	}
}

func TestBulkAffineFacade(t *testing.T) {
	pairs := randomPairs(33, 8, 40)
	aff := AffineScoring{Match: 2, Mismatch: 1, GapOpen: 3, GapExtend: 1}
	res, err := BulkAffine(pairs, aff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(pairs) {
		t.Fatal("score count wrong")
	}
	if _, err := BulkAffine(pairs, aff, 16); err == nil {
		t.Error("bad lanes should fail")
	}
	if _, err := BulkAffine([]Pair{{X: "Z", Y: "A"}}, aff, 0); err == nil {
		t.Error("bad sequence should fail")
	}
	if _, err := BulkAffine(pairs, aff, 64); err != nil {
		t.Errorf("64-lane affine failed: %v", err)
	}
}

func TestBulkAlignFacade(t *testing.T) {
	pairs := randomPairs(20, 8, 32)
	aligns, err := BulkAlign(pairs, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, _ := Score(p.X, p.Y, PaperScoring)
		if aligns[i].Score != want {
			t.Fatalf("pair %d: %d want %d", i, aligns[i].Score, want)
		}
	}
	if _, err := BulkAlign(pairs, BulkOptions{Lanes: 5}); err == nil {
		t.Error("bad lanes should fail")
	}
	if _, err := BulkAlign([]Pair{{X: "Z", Y: "A"}}, BulkOptions{}); err == nil {
		t.Error("bad sequence should fail")
	}
	if _, err := BulkAlign(pairs, BulkOptions{Lanes: 64}); err != nil {
		t.Errorf("64-lane align failed: %v", err)
	}
}

func TestAlignBandedFacade(t *testing.T) {
	// Plant a hit, locate it with positions, realign inside the band.
	pairs := randomPairs(32, 12, 200)
	pairs[7].Y = pairs[7].Y[:90] + pairs[7].X + pairs[7].Y[90+12:]
	pos, err := BulkWithPositions(pairs, BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	band := Band{Offset: pos.EndJ[7] - pos.EndI[7], Width: 6}
	a, err := AlignBanded(pairs[7].X, pairs[7].Y, PaperScoring, band)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != pos.Scores[7] {
		t.Errorf("banded score %d, bulk %d", a.Score, pos.Scores[7])
	}
	if _, err := AlignBanded("Z", "A", PaperScoring, band); err == nil {
		t.Error("bad x should fail")
	}
	if _, err := AlignBanded("A", "Z", PaperScoring, band); err == nil {
		t.Error("bad y should fail")
	}
	if _, err := AlignBanded("A", "A", Scoring{}, band); err == nil {
		t.Error("bad scoring should fail")
	}
}
