package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
)

// FuzzEnginesAgree fuzzes arbitrary base strings through every scoring
// engine and requires them to agree; invalid inputs must fail uniformly.
func FuzzEnginesAgree(f *testing.F) {
	f.Add("ACGT", "TTACGTTT")
	f.Add("A", "A")
	f.Add("TACTG", "GAACTGA")
	f.Add("ACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACGTACGTACGTACGT")
	f.Fuzz(func(t *testing.T, x, y string) {
		if len(x) == 0 || len(y) == 0 || len(x) > 64 || len(y) > 128 || len(x) > len(y) {
			t.Skip()
		}
		want, err := core.Score(x, y, core.PaperScoring)
		if err != nil {
			// Invalid letters: every engine must reject the same input.
			if _, err2 := core.Bulk([]core.Pair{{X: x, Y: y}}, core.BulkOptions{}); err2 == nil {
				t.Fatalf("Score rejected %q/%q but Bulk accepted", x, y)
			}
			t.Skip()
		}
		for _, lanes := range []int{32, 64} {
			res, err := core.Bulk([]core.Pair{{X: x, Y: y}}, core.BulkOptions{Lanes: lanes})
			if err != nil {
				t.Fatalf("Bulk(lanes=%d) failed: %v", lanes, err)
			}
			if res.Scores[0] != want {
				t.Fatalf("lanes=%d: bulk %d, reference %d (x=%q y=%q)",
					lanes, res.Scores[0], want, x, y)
			}
		}
		g, err := core.SimulateGPU(context.Background(), []core.Pair{{X: x, Y: y}}, core.BulkOptions{})
		if err != nil {
			t.Fatalf("SimulateGPU failed: %v", err)
		}
		if g.Scores[0] != want {
			t.Fatalf("GPU sim %d, reference %d (x=%q y=%q)", g.Scores[0], want, x, y)
		}
		a, err := core.Align(x, y, core.PaperScoring)
		if err != nil || a.Score != want {
			t.Fatalf("Align score %d, reference %d", a.Score, want)
		}
	})
}
