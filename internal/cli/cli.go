// Package cli holds the small amount of plumbing the cmd/ tools share:
// uniform fatal-error reporting and a signal-cancelled context, so every
// tool exits the same way on bad input and cleans up on Ctrl-C instead of
// dying mid-batch.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/obs"
)

// exit is swapped out by tests.
var exit = os.Exit

// Exitf prints a formatted message to stderr and exits with code.
func Exitf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	exit(code)
}

// Die reports err on stderr and exits. Usage errors (from flag parsing or
// argument validation) should use Exitf(2, ...) instead; Die is for runtime
// failures and exits 1 — or 130 (the conventional 128+SIGINT code) when the
// error is a context cancellation from an interrupt.
func Die(err error) {
	code := 1
	if errors.Is(err, context.Canceled) {
		code = 130
	}
	fmt.Fprintln(os.Stderr, err)
	exit(code)
}

// Check is a no-op for nil err and Die otherwise.
func Check(err error) {
	if err != nil {
		Die(err)
	}
}

// stdout is swapped out by tests.
var stdout io.Writer = os.Stdout

// PrintJSON writes v to stdout as indented JSON with a trailing newline —
// the shared implementation behind every tool's -json flag, so machine
// output is formatted identically everywhere.
func PrintJSON(v any) error {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// MetricsDump writes reg's Prometheus text exposition to path — or to
// stderr when path is "-" — giving one-shot commands the same view the
// server serves at /metricsz (per-stage pipeline histograms, GCUPS, run
// counters) without standing up a listener.
func MetricsDump(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WritePrometheus(os.Stderr)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, and a
// stop function releasing the signal handler. A second signal while the
// context is already cancelled kills the process via Go's default handling,
// so a hung run can still be terminated.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
