package cli

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

// withFakeExit captures the exit code instead of terminating the test
// process.
func withFakeExit(t *testing.T, fn func()) (code int) {
	t.Helper()
	code = -1
	old := exit
	exit = func(c int) { code = c; panic("exit") }
	defer func() {
		exit = old
		if r := recover(); r != nil && r != "exit" {
			panic(r)
		}
	}()
	fn()
	return code
}

func TestExitf(t *testing.T) {
	if code := withFakeExit(t, func() { Exitf(2, "usage: %s", "x") }); code != 2 {
		t.Fatalf("Exitf exited %d, want 2", code)
	}
}

func TestDieCodes(t *testing.T) {
	if code := withFakeExit(t, func() { Die(errors.New("boom")) }); code != 1 {
		t.Fatalf("plain error exited %d, want 1", code)
	}
	wrapped := fmt.Errorf("run: %w", context.Canceled)
	if code := withFakeExit(t, func() { Die(wrapped) }); code != 130 {
		t.Fatalf("interrupt exited %d, want 130", code)
	}
}

func TestCheckNilIsNoop(t *testing.T) {
	Check(nil) // must not exit
}

func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already done: %v", err)
	}
	stop()
}

func TestPrintJSON(t *testing.T) {
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()
	if err := PrintJSON(map[string]int{"score": 7}); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"score\": 7\n}\n"
	if buf.String() != want {
		t.Fatalf("PrintJSON wrote %q, want %q", buf.String(), want)
	}
	if err := PrintJSON(func() {}); err == nil {
		t.Fatal("PrintJSON of an unmarshalable value must error")
	}
}
