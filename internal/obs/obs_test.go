package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("requests_total") != c {
		t.Error("second registration returned a different counter")
	}
	g := r.Gauge("inflight")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter should panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got < 5.5 || got > 5.6 {
		t.Errorf("sum = %v, want ≈5.555", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelledExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("http_requests_total", "align requests by route and code")
	r.Counter(L("http_requests_total", "route", "align", "code", "200")).Add(7)
	r.Counter(L("http_requests_total", "route", "align", "code", "429")).Add(2)
	r.Histogram(L("stage_seconds", "stage", "swa"), []float64{0.5}).Observe(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP http_requests_total align requests by route and code",
		"# TYPE http_requests_total counter",
		`http_requests_total{route="align",code="200"} 7`,
		`http_requests_total{route="align",code="429"} 2`,
		`stage_seconds_bucket{stage="swa",le="0.5"} 1`,
		`stage_seconds_sum{stage="swa"} 0.25`,
		`stage_seconds_count{stage="swa"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with two children.
	if strings.Count(out, "# TYPE http_requests_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := L("m", "k", `a"b\c`)
	want := `m{k="a\"b\\c"}`
	if got != want {
		t.Errorf("L = %s, want %s", got, want)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h", nil).Observe(0.001)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Errorf("counter = %d, want 8000", r.Counter("c").Value())
	}
	if r.Histogram("h", nil).Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", r.Histogram("h", nil).Count())
	}
	if r.Gauge("g").Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", r.Gauge("g").Value())
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("")
	if tr.ID() == "" {
		t.Error("generated trace ID is empty")
	}
	ctx := WithTrace(context.Background(), tr)
	if TraceID(ctx) != tr.ID() {
		t.Error("TraceID(ctx) does not round-trip")
	}
	end := FromContext(ctx).StartSpan("stage.swa")
	time.Sleep(time.Millisecond)
	end()
	FromContext(ctx).AddSpan("queue_wait", time.Now().Add(-2*time.Millisecond), 2*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "stage.swa" || spans[0].DurUS <= 0 {
		t.Errorf("span 0 = %+v", spans[0])
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Second)
	if tr.ID() != "" || tr.Spans() != nil {
		t.Error("nil trace should be inert")
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context should carry no trace")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	for i := 0; i < 3; i++ {
		tr := NewTrace("")
		tr.StartSpan("s")()
		r.Add(tr)
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring holds %d, want 2", len(snap))
	}
	for _, rec := range snap {
		if rec.ID == "" || len(rec.Spans) != 1 {
			t.Errorf("bad record %+v", rec)
		}
	}
}
