// Package obs is the dependency-free observability layer of the serving
// stack: a metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with Prometheus text exposition) plus lightweight
// request tracing (a trace ID generated at the server edge, propagated via
// context.Context, with structured span records for queue-wait → service →
// tier → pipeline-stage). Everything is stdlib-only and safe for concurrent
// use; the hot-path operations are single atomic adds.
//
// Metric naming follows the Prometheus conventions: families like
// pipeline_stage_sim_seconds carry constant label sets rendered into the
// metric name with L, e.g.
//
//	reg.Histogram(obs.L("pipeline_stage_sim_seconds", "pipeline", "bitwise",
//	        "stage", "swa"), obs.LatencyBuckets).Observe(d.Seconds())
//
// Most code records into the process-wide Default registry; tests pass
// their own Registry for isolation.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The value is a float64 stored
// atomically.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags what a registered name holds, so a name cannot silently
// change type between registrations.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

type entry struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry // full name (with rendered labels) → metric
	help    map[string]string // family name → HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*entry),
		help:    make(map[string]string),
	}
}

// def is the process-wide default registry, used when a layer is not handed
// an explicit one.
var def = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return def }

// L renders a metric family name with a constant label set, e.g.
// L("http_requests_total", "route", "align", "code", "200") →
// `http_requests_total{route="align",code="200"}`. Label values are escaped
// per the exposition format. Panics on an odd key/value count (programmer
// error).
func L(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: L(%q) with odd label list", family))
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a full metric name into its family and the rendered
// label block (without braces; "" when unlabelled).
func splitName(full string) (family, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], strings.TrimSuffix(full[i+1:], "}")
	}
	return full, ""
}

// Help sets the HELP line for a metric family. First writer wins; calling
// it is optional.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.help[family]; !ok {
		r.help[family] = text
	}
}

func (r *Registry) get(name string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.metrics[name]
	if !ok {
		e = &entry{kind: kind}
		switch kind {
		case kindCounter:
			e.c = &Counter{}
		case kindGauge:
			e.g = &Gauge{}
		}
		r.metrics[name] = e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
	}
	return e
}

// Counter returns the counter with the given full name, creating it on
// first use. Panics if the name is already registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	return r.get(name, kindCounter).c
}

// Gauge returns the gauge with the given full name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.get(name, kindGauge).g
}

// Histogram returns the histogram with the given full name, creating it
// with the given bucket upper bounds on first use (later calls may pass nil
// buckets). Buckets must be sorted ascending; a +Inf bucket is implicit.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.metrics[name]
	if !ok {
		e = &entry{kind: kindHistogram, h: newHistogram(buckets)}
		r.metrics[name] = e
	}
	if e.kind != kindHistogram {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as histogram", name, e.kind))
	}
	return e.h
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), grouped by family with deterministic ordering.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	entries := make(map[string]*entry, len(r.metrics))
	for n, e := range r.metrics {
		entries[n] = e
	}
	help := make(map[string]string, len(r.help))
	for f, h := range r.help {
		help[f] = h
	}
	r.mu.Unlock()

	// Order by (family, labels) so families stay contiguous and HELP/TYPE
	// headers are emitted exactly once each.
	sort.Slice(names, func(i, j int) bool {
		fi, li := splitName(names[i])
		fj, lj := splitName(names[j])
		if fi != fj {
			return fi < fj
		}
		return li < lj
	})

	lastFamily := ""
	for _, n := range names {
		e := entries[n]
		family, labels := splitName(n)
		if family != lastFamily {
			if h, ok := help[family]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, e.kind); err != nil {
				return err
			}
			lastFamily = family
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", n, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", n, formatFloat(e.g.Value()))
		case kindHistogram:
			err = e.h.write(w, family, labels)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// ordinary magnitudes, +Inf spelled out).
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
