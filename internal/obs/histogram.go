package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds for latency observations
// in seconds: 1µs to 10s, one decade per pair of buckets. They cover both
// the modelled device times (microseconds) and host wall times under load
// (milliseconds to seconds).
var LatencyBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1, 4, 10,
}

// GCUPSBuckets are histogram bounds for throughput observations in GCUPS
// (billions of cell updates per second), spanning CPU engines (<1) to the
// modelled GPU pipelines (tens to hundreds).
var GCUPSBuckets = []float64{0.1, 0.5, 1, 5, 10, 25, 50, 100, 250, 500, 1000}

// RatioBuckets are histogram bounds for observations confined to [0, 1] —
// hit ratios, pass rates, utilisation fractions. The low end is finer
// because that is where a selective prefilter should live.
var RatioBuckets = []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1}

// Histogram is a fixed-bucket histogram with atomic counts: Observe is one
// atomic add per call (plus two for sum and count), with no locking.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1), // +1 for +Inf
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// write renders the histogram in exposition format: cumulative _bucket
// series with the le label appended to the metric's own labels, then _sum
// and _count.
func (h *Histogram) write(w io.Writer, family, labels string) error {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.upper) {
			le = formatFloat(h.upper[i])
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", family, labels, sep, le, cum); err != nil {
			return err
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, suffix, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, suffix, h.Count())
	return err
}
