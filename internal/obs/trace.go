package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Span is one timed segment of a trace: queue wait, a tier attempt, a
// pipeline stage. Start is the offset from the trace's own start, so spans
// serialise compactly and never leak absolute host times.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"` // offset from trace start, microseconds
	DurUS   int64  `json:"dur_us"`
}

// Trace is one request's span collection, carried through context.Context.
// All methods are nil-safe: code instrumenting a path just calls
// obs.FromContext(ctx).StartSpan(...) and gets a no-op when no trace is
// attached (background jobs, tests).
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTraceID returns a fresh 64-bit hex trace ID.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// NewTrace starts a trace. An empty id generates one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a span and returns the function that closes it. Safe on a
// nil trace (returns a no-op).
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.AddSpan(name, begin, time.Since(begin)) }
}

// AddSpan records an already-measured span. Safe on a nil trace.
func (t *Trace) AddSpan(name string, begin time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	off := begin.Sub(t.start)
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:    name,
		StartUS: off.Microseconds(),
		DurUS:   dur.Microseconds(),
	})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans. Safe on a nil trace.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil (every Trace method is
// nil-safe, so callers never need to check).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceID returns the context's trace ID, or "".
func TraceID(ctx context.Context) string { return FromContext(ctx).ID() }

// TraceRecord is a finished trace as published by a TraceRing (e.g. the
// server's /tracez).
type TraceRecord struct {
	ID    string `json:"trace_id"`
	Spans []Span `json:"spans"`
}

// TraceRing is a bounded ring of recently finished traces, for debugging
// endpoints. Concurrency-safe.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

// NewTraceRing returns a ring holding the last n traces (n ≥ 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]TraceRecord, n)}
}

// Add records a finished trace.
func (r *TraceRing) Add(t *Trace) {
	if t == nil {
		return
	}
	rec := TraceRecord{ID: t.ID(), Spans: t.Spans()}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the stored traces, oldest first.
func (r *TraceRing) Snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceRecord
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}
