package kernels

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"repro/internal/bitslice"
	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/perfmodel"
	"repro/internal/swa"
	"repro/internal/word"
)

// runSWAKernel assembles the device state by hand and launches the Step-3
// kernel directly (the pipeline package tests the integrated flow; this
// test pins the kernel in isolation).
func runSWAKernel[W word.Word](t *testing.T, pairs []dna.Pair, useShuffle bool) []int {
	t.Helper()
	lanes := word.Lanes[W]()
	m, n := len(pairs[0].X), len(pairs[0].Y)
	par := bitslice.Params{
		S:     bitslice.RequiredBits(2, m),
		Match: 2, Mismatch: 1, Gap: 1,
	}
	l := Layout{Pairs: len(pairs), M: m, N: n, Lanes: lanes, S: par.S}
	dev := cudasim.NewDevice(perfmodel.TitanX, 4<<20)
	bufs, err := AllocBuffers(dev, l)
	if err != nil {
		t.Fatal(err)
	}

	// Host-side transpose straight into the device buffers.
	stageX := make([]byte, bufs.XH.Size())
	stageXL := make([]byte, bufs.XL.Size())
	stageY := make([]byte, bufs.YH.Size())
	stageYL := make([]byte, bufs.YL.Size())
	for g := 0; g < l.Groups(); g++ {
		lo := g * lanes
		hi := min(lo+lanes, len(pairs))
		xs := make([]dna.Seq, hi-lo)
		ys := make([]dna.Seq, hi-lo)
		for i := lo; i < hi; i++ {
			xs[i-lo] = pairs[i].X
			ys[i-lo] = pairs[i].Y
		}
		if lanes == 64 {
			tx, _ := dna.TransposeGroupNaive[uint64](xs)
			ty, _ := dna.TransposeGroupNaive[uint64](ys)
			for i := 0; i < m; i++ {
				binary.LittleEndian.PutUint64(stageX[(g*m+i)*8:], tx.H[i])
				binary.LittleEndian.PutUint64(stageXL[(g*m+i)*8:], tx.L[i])
			}
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint64(stageY[(g*n+j)*8:], ty.H[j])
				binary.LittleEndian.PutUint64(stageYL[(g*n+j)*8:], ty.L[j])
			}
		} else {
			tx, _ := dna.TransposeGroupNaive[uint32](xs)
			ty, _ := dna.TransposeGroupNaive[uint32](ys)
			for i := 0; i < m; i++ {
				binary.LittleEndian.PutUint32(stageX[(g*m+i)*4:], tx.H[i])
				binary.LittleEndian.PutUint32(stageXL[(g*m+i)*4:], tx.L[i])
			}
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint32(stageY[(g*n+j)*4:], ty.H[j])
				binary.LittleEndian.PutUint32(stageYL[(g*n+j)*4:], ty.L[j])
			}
		}
	}
	for _, c := range []struct {
		buf  cudasim.Buf
		data []byte
	}{{bufs.XH, stageX}, {bufs.XL, stageXL}, {bufs.YH, stageY}, {bufs.YL, stageYL}} {
		if err := dev.MemcpyHtoD(c.buf, c.data); err != nil {
			t.Fatal(err)
		}
	}

	k := &SWAKernel[W]{L: l, B: bufs, Par: par, UseShuffle: useShuffle}
	if _, err := dev.Launch(l.Groups(), m, k); err != nil {
		t.Fatal(err)
	}

	// Read the score planes and untranspose host-side.
	raw := make([]byte, bufs.ScorePlanes.Size())
	if err := dev.MemcpyDtoH(raw, bufs.ScorePlanes); err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(pairs))
	for g := 0; g < l.Groups(); g++ {
		num := bitslice.NewNum[W](par.S)
		for h := 0; h < par.S; h++ {
			if lanes == 64 {
				num[h] = W(binary.LittleEndian.Uint64(raw[(g*par.S+h)*8:]))
			} else {
				num[h] = W(binary.LittleEndian.Uint32(raw[(g*par.S+h)*4:]))
			}
		}
		for kk := 0; kk < lanes && g*lanes+kk < len(pairs); kk++ {
			out[g*lanes+kk] = int(num.Get(kk))
		}
	}
	return out
}

func TestSWAKernelDirect32(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	pairs := dna.PlantedPairs(rng, 40, 16, 64, 0.5, dna.MutationModel{SubRate: 0.1})
	for _, shuffle := range []bool{false, true} {
		got := runSWAKernel[uint32](t, pairs, shuffle)
		for i, p := range pairs {
			want := swa.Score(p.X, p.Y, swa.PaperScoring)
			if got[i] != want {
				t.Fatalf("shuffle=%v pair %d: kernel %d, reference %d", shuffle, i, got[i], want)
			}
		}
	}
}

func TestSWAKernelDirect64(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	pairs := dna.RandomPairs(rng, 70, 12, 48)
	got := runSWAKernel[uint64](t, pairs, true)
	for i, p := range pairs {
		want := swa.Score(p.X, p.Y, swa.PaperScoring)
		if got[i] != want {
			t.Fatalf("pair %d: kernel %d, reference %d", i, got[i], want)
		}
	}
}

func TestWordwiseKernelDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	pairs := dna.RandomPairs(rng, 20, 10, 40)
	m, n := 10, 40
	l := Layout{Pairs: len(pairs), M: m, N: n, Lanes: 32, S: 6}
	dev := cudasim.NewDevice(perfmodel.TitanX, 1<<20)
	bufs, err := AllocBuffers(dev, l)
	if err != nil {
		t.Fatal(err)
	}
	xb := make([]byte, len(pairs)*m)
	yb := make([]byte, len(pairs)*n)
	for p, pr := range pairs {
		for i, c := range pr.X {
			xb[p*m+i] = byte(c)
		}
		for j, c := range pr.Y {
			yb[p*n+j] = byte(c)
		}
	}
	if err := dev.MemcpyHtoD(bufs.XWord, xb); err != nil {
		t.Fatal(err)
	}
	if err := dev.MemcpyHtoD(bufs.YWord, yb); err != nil {
		t.Fatal(err)
	}
	k := &WordwiseKernel{L: l, B: bufs, Match: 2, Mismat: 1, Gap: 1}
	if _, err := dev.Launch(len(pairs), m, k); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 4*len(pairs))
	if err := dev.MemcpyDtoH(raw, bufs.Scores); err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		got := int(binary.LittleEndian.Uint32(raw[i*4:]))
		if want := swa.Score(p.X, p.Y, swa.PaperScoring); got != want {
			t.Fatalf("pair %d: kernel %d, reference %d", i, got, want)
		}
	}
}
