package kernels

// Per-block scratch pooling. Blocks of one launch run concurrently across
// the device's worker goroutines, so scratch cannot hang off the kernel
// struct; instead each RunBlock borrows its working set from a package-level
// sync.Pool and returns it when the block finishes. A borrowed state whose
// shape doesn't match the current launch (different m, s or lane width) is
// dropped for the GC — reuse is an optimisation, never a correctness
// dependency. Within a block, cudasim runs threads sequentially, so one
// scratch set per block is race-free.

import (
	"sync"

	"repro/internal/bitslice"
	"repro/internal/word"
)

// swaBlockState is the SWA kernel's per-block working set: one thread state
// (registers + scratch) per pattern row.
type swaBlockState[W word.Word] struct {
	st []swaThreadState[W]
}

var swaPool32, swaPool64 sync.Pool

func swaPool[W word.Word]() *sync.Pool {
	if word.Lanes[W]() == 64 {
		return &swaPool64
	}
	return &swaPool32
}

// getSWAState returns a zeroed m-thread state with s-plane registers,
// recycled when a matching one is pooled.
func getSWAState[W word.Word](m, s int) *swaBlockState[W] {
	if v := swaPool[W]().Get(); v != nil {
		bs := v.(*swaBlockState[W])
		if len(bs.st) == m && len(bs.st[0].left) == s {
			for i := range bs.st {
				bs.st[i].left.Zero()
				bs.st[i].diag.Zero()
				bs.st[i].up.Zero()
				bs.st[i].cur.Zero()
				bs.st[i].r.Zero()
			}
			return bs
		}
	}
	bs := &swaBlockState[W]{st: make([]swaThreadState[W], m)}
	for i := range bs.st {
		bs.st[i].left = bitslice.NewNum[W](s)
		bs.st[i].diag = bitslice.NewNum[W](s)
		bs.st[i].up = bitslice.NewNum[W](s)
		bs.st[i].cur = bitslice.NewNum[W](s)
		bs.st[i].r = bitslice.NewNum[W](s)
		bs.st[i].tmp = bitslice.NewNum[W](s)
		bs.st[i].scratch = bitslice.NewScratch[W](s)
	}
	return bs
}

func putSWAState[W word.Word](bs *swaBlockState[W]) { swaPool[W]().Put(bs) }

// wordBuf is a pooled lanes-word scratch column for the transpose kernels.
type wordBuf[W word.Word] struct {
	w []W
}

var wordPool32, wordPool64 sync.Pool

func wordPool[W word.Word]() *sync.Pool {
	if word.Lanes[W]() == 64 {
		return &wordPool64
	}
	return &wordPool32
}

// getWordBuf returns an n-word scratch buffer with unspecified contents;
// callers overwrite every element they read.
func getWordBuf[W word.Word](n int) *wordBuf[W] {
	if v := wordPool[W]().Get(); v != nil {
		b := v.(*wordBuf[W])
		if len(b.w) == n {
			return b
		}
	}
	return &wordBuf[W]{w: make([]W, n)}
}

func putWordBuf[W word.Word](b *wordBuf[W]) { wordPool[W]().Put(b) }
