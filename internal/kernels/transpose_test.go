package kernels

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"repro/internal/cudasim"
	"repro/internal/dna"
	"repro/internal/perfmodel"
)

// TestW2BKernelMatchesHostTranspose runs the Step-2 kernel standalone and
// compares every output word with the host-side transpose.
func TestW2BKernelMatchesHostTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	l := Layout{Pairs: 70, M: 24, N: 96, Lanes: 32, S: 6}
	dev := cudasim.NewDevice(perfmodel.TitanX, 1<<20)
	bufs, err := AllocBuffers(dev, l)
	if err != nil {
		t.Fatal(err)
	}

	seqs := make([]dna.Seq, l.Pairs)
	host := make([]byte, l.Pairs*l.M)
	for p := range seqs {
		seqs[p] = dna.RandSeq(rng, l.M)
		for i, c := range seqs[p] {
			host[p*l.M+i] = byte(c)
		}
	}
	if err := dev.MemcpyHtoD(bufs.XWord, host); err != nil {
		t.Fatal(err)
	}

	k := &W2BKernel[uint32]{L: l, Src: bufs.XWord, DstH: bufs.XH, DstL: bufs.XL, Length: l.M}
	stats, err := dev.Launch(k.GridDim(), TransposeThreads, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ALUOps == 0 || stats.GlobalLoadBytes == 0 {
		t.Error("kernel stats empty")
	}

	rawH := make([]byte, bufs.XH.Size())
	rawL := make([]byte, bufs.XL.Size())
	if err := dev.MemcpyDtoH(rawH, bufs.XH); err != nil {
		t.Fatal(err)
	}
	if err := dev.MemcpyDtoH(rawL, bufs.XL); err != nil {
		t.Fatal(err)
	}

	for g := 0; g < l.Groups(); g++ {
		lo := g * l.Lanes
		hi := min(lo+l.Lanes, l.Pairs)
		want, err := dna.TransposeGroupNaive[uint32](seqs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < l.M; i++ {
			idx := (g*l.M + i) * 4
			gotH := binary.LittleEndian.Uint32(rawH[idx:])
			gotL := binary.LittleEndian.Uint32(rawL[idx:])
			if gotH != want.H[i] || gotL != want.L[i] {
				t.Fatalf("group %d col %d: kernel (%#x,%#x), host (%#x,%#x)",
					g, i, gotH, gotL, want.H[i], want.L[i])
			}
		}
	}
}

// TestB2WKernelInvertsPlanes writes known score planes and checks the
// Step-4 kernel recovers the wordwise values.
func TestB2WKernelInvertsPlanes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	l := Layout{Pairs: 64, M: 8, N: 16, Lanes: 32, S: 6}
	dev := cudasim.NewDevice(perfmodel.TitanX, 1<<20)
	bufs, err := AllocBuffers(dev, l)
	if err != nil {
		t.Fatal(err)
	}

	// Per group, choose 32 scores, build their planes host-side.
	scores := make([]uint32, l.Pairs)
	planes := make([]byte, bufs.ScorePlanes.Size())
	for p := range scores {
		scores[p] = rng.Uint32() & 63
	}
	for g := 0; g < l.Groups(); g++ {
		for h := 0; h < l.S; h++ {
			var plane uint32
			for k := 0; k < l.Lanes; k++ {
				if scores[g*l.Lanes+k]>>uint(h)&1 != 0 {
					plane |= 1 << uint(k)
				}
			}
			binary.LittleEndian.PutUint32(planes[(g*l.S+h)*4:], plane)
		}
	}
	if err := dev.MemcpyHtoD(bufs.ScorePlanes, planes); err != nil {
		t.Fatal(err)
	}

	k := &B2WKernel[uint32]{L: l, B: bufs}
	if _, err := dev.Launch(k.GridDim(), TransposeThreads, k); err != nil {
		t.Fatal(err)
	}

	raw := make([]byte, bufs.Scores.Size())
	if err := dev.MemcpyDtoH(raw, bufs.Scores); err != nil {
		t.Fatal(err)
	}
	for p, want := range scores {
		if got := binary.LittleEndian.Uint32(raw[p*4:]); got != want {
			t.Fatalf("pair %d: untransposed %d, want %d", p, got, want)
		}
	}
}
