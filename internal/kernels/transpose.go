package kernels

import (
	"repro/internal/bitmat"
	"repro/internal/cudasim"
	"repro/internal/word"
)

// TransposeThreads is the block size the paper uses for the W2B and B2W
// kernels ("CUDA blocks of 1024 threads each to maximize occupancy").
const TransposeThreads = 1024

// W2BKernel is the paper's Step-2 kernel: each thread bit-transposes one
// character column — the Lanes characters that the group's sequences carry
// at one position — using the s=2 specialised transpose (127 operations on
// 32 lanes, Table I), producing one high-plane and one low-plane word.
type W2BKernel[W word.Word] struct {
	L      Layout
	Src    cudasim.Buf // wordwise chars, pair-major bytes
	DstH   cudasim.Buf
	DstL   cudasim.Buf
	Length int // M for the pattern array, N for the text array
}

// Columns returns the total thread count needed.
func (k *W2BKernel[W]) Columns() int { return k.L.Groups() * k.Length }

// GridDim returns the number of blocks for the launch.
func (k *W2BKernel[W]) GridDim() int {
	return (k.Columns() + TransposeThreads - 1) / TransposeThreads
}

// RunBlock implements cudasim.Kernel.
func (k *W2BKernel[W]) RunBlock(b *cudasim.Block) {
	lanes := k.L.Lanes
	plan := bitmat.CachedPlan(lanes, 2, bitmat.ValuesToPlanes)
	ops := plan.Counts().BitOps() * (lanes / 32) // 64-bit ops issue as two instructions
	cols := k.Columns()
	buf := getWordBuf[W](lanes)
	defer putWordBuf(buf)
	col := buf.w
	b.ForEachThread(func(t *cudasim.Thread) {
		c := b.Idx*TransposeThreads + t.Tid
		if c >= cols {
			return
		}
		g := c / k.Length
		i := c % k.Length
		for kk := 0; kk < lanes; kk++ {
			pair := g*lanes + kk
			if pair < k.L.Pairs {
				col[kk] = W(t.GlobalLoad8(k.Src, int64(pair)*int64(k.Length)+int64(i)))
			} else {
				col[kk] = 0 // padding lane
			}
		}
		bitmat.Apply(plan, col)
		t.Ops(ops)
		storeW(t, k.DstL, int64(g)*int64(k.Length)+int64(i), col[0])
		storeW(t, k.DstH, int64(g)*int64(k.Length)+int64(i), col[1])
	})
}

// B2WKernel is the paper's Step-4 kernel: each thread un-transposes one
// group's s score planes back into Lanes wordwise integers.
type B2WKernel[W word.Word] struct {
	L Layout
	B *Buffers
}

// GridDim returns the number of blocks for the launch.
func (k *B2WKernel[W]) GridDim() int {
	return (k.L.Groups() + TransposeThreads - 1) / TransposeThreads
}

// RunBlock implements cudasim.Kernel.
func (k *B2WKernel[W]) RunBlock(b *cudasim.Block) {
	lanes := k.L.Lanes
	s := k.L.S
	plan := bitmat.CachedPlan(lanes, s, bitmat.PlanesToValues)
	ops := (plan.Counts().BitOps() + lanes) * (lanes / 32) // plan + masking, 2x for 64-bit words
	groups := k.L.Groups()
	buf := getWordBuf[W](lanes)
	defer putWordBuf(buf)
	a := buf.w
	b.ForEachThread(func(t *cudasim.Thread) {
		g := b.Idx*TransposeThreads + t.Tid
		if g >= groups {
			return
		}
		for i := range a {
			a[i] = 0
		}
		for h := 0; h < s; h++ {
			a[h] = loadW[W](t, k.B.ScorePlanes, int64(g)*int64(s)+int64(h))
		}
		bitmat.Apply(plan, a)
		bitmat.MaskValues(a, s)
		t.Ops(ops)
		for kk := 0; kk < lanes; kk++ {
			storeW(t, k.B.Scores, int64(g)*int64(lanes)+int64(kk), a[kk])
		}
	})
}
