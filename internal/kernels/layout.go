// Package kernels implements the paper's CUDA kernels (§V) on the cudasim
// substrate: the W2B bit-transpose kernel (Step 2), the BPBC wavefront
// Smith-Waterman kernel (Step 3), the B2W untranspose kernel (Step 4), and
// the conventional wordwise wavefront kernel used as the GPU baseline in
// Table IV. Each kernel is functionally exact (scores validate against the
// CPU reference) and charges its precise operation and memory costs to the
// simulator, from which perfmodel derives Table IV's GPU columns.
package kernels

import (
	"fmt"

	"repro/internal/bitslice"
	"repro/internal/cudasim"
	"repro/internal/word"
)

// Layout describes how a batch of pairs is arranged in device memory.
//
// Wordwise inputs are pair-major bytes: X character i of pair p lives at
// byte p*M+i (and correspondingly for Y). Bit-transposed arrays are
// group-major words: column i of group g lives at word g*M+i. Score planes
// are group-major: plane h of group g at word g*S+h. Untransposed scores
// are one word per pair.
type Layout struct {
	Pairs int // number of (X, Y) pairs
	M     int // pattern length
	N     int // text length
	Lanes int // 32 or 64
	S     int // score bit width
}

// Groups returns the number of lane groups.
func (l Layout) Groups() int { return (l.Pairs + l.Lanes - 1) / l.Lanes }

// LaneBytes returns the byte width of a lane word.
func (l Layout) LaneBytes() int { return l.Lanes / 8 }

// Validate checks the layout.
func (l Layout) Validate() error {
	if l.Pairs <= 0 || l.M <= 0 || l.N < l.M {
		return fmt.Errorf("kernels: invalid layout %+v", l)
	}
	if l.Lanes != 32 && l.Lanes != 64 {
		return fmt.Errorf("kernels: lanes must be 32 or 64, got %d", l.Lanes)
	}
	if l.S < 1 || l.S > l.Lanes {
		return fmt.Errorf("kernels: S=%d out of range", l.S)
	}
	if l.M > 1024 {
		return fmt.Errorf("kernels: m=%d exceeds the 1024-thread block limit", l.M)
	}
	return nil
}

// Buffers aggregates the device allocations of one batch.
type Buffers struct {
	XWord, YWord   cudasim.Buf // wordwise chars, 1 byte each, pair-major
	XH, XL, YH, YL cudasim.Buf // bit-transposed columns, group-major words
	ScorePlanes    cudasim.Buf // G*S words
	Scores         cudasim.Buf // Groups*Lanes words (one per lane slot)
}

// AllocBuffers reserves all device buffers for a layout.
func AllocBuffers(d *cudasim.Device, l Layout) (*Buffers, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	lb := int64(l.LaneBytes())
	g := int64(l.Groups())
	var b Buffers
	var err error
	alloc := func(dst *cudasim.Buf, name string, n int64) {
		if err != nil {
			return
		}
		if *dst, err = d.Alloc(n); err != nil {
			err = fmt.Errorf("kernels: alloc %s (%d bytes): %w", name, n, err)
		}
	}
	alloc(&b.XWord, "XWord", int64(l.Pairs)*int64(l.M))
	alloc(&b.YWord, "YWord", int64(l.Pairs)*int64(l.N))
	alloc(&b.XH, "XH", g*int64(l.M)*lb)
	alloc(&b.XL, "XL", g*int64(l.M)*lb)
	alloc(&b.YH, "YH", g*int64(l.N)*lb)
	alloc(&b.YL, "YL", g*int64(l.N)*lb)
	alloc(&b.ScorePlanes, "ScorePlanes", g*int64(l.S)*lb)
	alloc(&b.Scores, "Scores", g*int64(l.Lanes)*lb)
	if err != nil {
		return nil, err
	}
	return &b, nil
}

// loadW / storeW adapt the 32/64-bit global accessors to the generic lane
// word type.
func loadW[W word.Word](t *cudasim.Thread, buf cudasim.Buf, idx int64) W {
	if word.Lanes[W]() == 64 {
		return W(t.GlobalLoad64(buf, idx))
	}
	return W(t.GlobalLoad32(buf, idx))
}

func storeW[W word.Word](t *cudasim.Thread, buf cudasim.Buf, idx int64, v W) {
	if word.Lanes[W]() == 64 {
		t.GlobalStore64(buf, idx, uint64(v))
	} else {
		t.GlobalStore32(buf, idx, uint32(v))
	}
}

// sharedStoreW/LoadW move a lane word through shared memory, as 1 or 2
// 32-bit bank accesses depending on width.
func sharedStoreW[W word.Word](t *cudasim.Thread, arr cudasim.SharedArr, idx int, v W) {
	if word.Lanes[W]() == 64 {
		t.SharedStore(arr, 2*idx, uint32(uint64(v)))
		t.SharedStore(arr, 2*idx+1, uint32(uint64(v)>>32))
	} else {
		t.SharedStore(arr, idx, uint32(v))
	}
}

func sharedLoadW[W word.Word](t *cudasim.Thread, arr cudasim.SharedArr, idx int) W {
	if word.Lanes[W]() == 64 {
		lo := t.SharedLoad(arr, 2*idx)
		hi := t.SharedLoad(arr, 2*idx+1)
		return W(uint64(lo) | uint64(hi)<<32)
	}
	return W(t.SharedLoad(arr, idx))
}

// swCellOps returns the exact bitwise-operation count of one SW cell update
// including the running-max merge, matching what the kernels charge.
func swCellOps(s int) int {
	rows := bitslice.OpCounts(s, 2)
	var sw, maxB int
	for _, r := range rows {
		switch r.Name {
		case "SW":
			sw = r.Ours
		case "max_B":
			maxB = r.Ours
		}
	}
	return sw + maxB
}

// SWARegs estimates the SWA kernel's per-thread register footprint in
// 32-bit registers: the paper's 4s+4 lane words of cell state (×2 for
// 64-bit lanes) plus loop/addressing temporaries.
func SWARegs(s, lanes int) int {
	wordsPer := lanes / 32
	return (4*s+4)*wordsPer + 16
}

// TransposeRegs estimates the W2B/B2W kernels' footprint: one full lane
// column held in registers plus temporaries.
func TransposeRegs(lanes int) int {
	return lanes*(lanes/32) + 16
}

// WordwiseRegs is the integer baseline kernel's footprint.
const WordwiseRegs = 24
