package kernels

import (
	"repro/internal/bitslice"
	"repro/internal/cudasim"
	"repro/internal/word"
)

// SWAKernel is the paper's Step-3 kernel: one CUDA block per lane group,
// m threads; thread i owns row i of all Lanes scoring matrices at once and
// the wavefront advances one anti-diagonal per step (Figure 2). Cell values
// are bit-sliced s-plane numbers held in registers; the d[i][j] handoff to
// thread i+1 goes through shared memory, and the running row maxima are
// merged down the thread chain as each row finishes (§V, steps 1-5).
//
// With UseShuffle set, the handoff between threads of the same warp uses
// register shuffles instead of shared memory — the optimisation §V proposes
// ("shuffle operations can be employed to transfer values among threads in
// the same warp, thus reducing the number of read and write operations to
// the shared memory"); only warp-boundary threads still cross shared
// memory. Results are bit-identical either way (tested); only the cost
// profile changes.
type SWAKernel[W word.Word] struct {
	L          Layout
	B          *Buffers
	Par        bitslice.Params
	UseShuffle bool
}

type swaThreadState[W word.Word] struct {
	xH, xL  W
	left    bitslice.Num[W] // d[i][j-1]
	diag    bitslice.Num[W] // d[i-1][j-1]
	up      bitslice.Num[W] // d[i-1][j]
	cur     bitslice.Num[W] // d[i][j]
	r       bitslice.Num[W] // running max of row i (merged down the chain)
	tmp     bitslice.Num[W] // staging for the row-max merge from above
	scratch *bitslice.Scratch[W]
}

// RunBlock implements cudasim.Kernel.
func (k *SWAKernel[W]) RunBlock(b *cudasim.Block) {
	g := b.Idx
	m, n, s := k.L.M, k.L.N, k.Par.S
	lanes := k.L.Lanes
	wordsPer := 1
	if lanes == 64 {
		wordsPer = 2
	}
	// 64-bit logic operations issue as two 32-bit instructions on the
	// paper's hardware; charge word operations by lane width.
	cellOps := swCellOps(s) * wordsPer
	mergeOps := (9*s - 2) * wordsPer

	// Shared memory: the d handoff buffer and the running-max chain.
	dBuf := b.SharedAlloc(m * s * wordsPer)
	rBuf := b.SharedAlloc(m * s * wordsPer)

	bs := getSWAState[W](m, s)
	defer putSWAState(bs)
	st := bs.st

	// Step 1 of §V: each thread reads its fixed pattern character once.
	// (The register Nums come pre-zeroed from the block-state pool.)
	b.ForEachThread(func(t *cudasim.Thread) {
		i := t.Tid
		st[i].xH = loadW[W](t, k.B.XH, int64(g)*int64(m)+int64(i))
		st[i].xL = loadW[W](t, k.B.XL, int64(g)*int64(m)+int64(i))
	})
	b.Sync()

	for step := 0; step <= n+m-2; step++ {
		// Phase A: every thread on the wavefront computes its cell,
		// publishes it for its lower neighbour, and handles the row-max
		// chain when it finishes its row.
		b.ForEachThread(func(t *cudasim.Thread) {
			i := t.Tid
			j := step - i
			if j < 0 || j >= n {
				return
			}
			ts := &st[i]
			yH := loadW[W](t, k.B.YH, int64(g)*int64(n)+int64(j))
			yL := loadW[W](t, k.B.YL, int64(g)*int64(n)+int64(j))
			e := bitslice.MismatchMask(ts.xH, ts.xL, yH, yL)
			bitslice.SWCell(ts.cur, ts.up, ts.left, ts.diag, e, k.Par, ts.scratch)
			bitslice.Max(ts.r, ts.r, ts.cur)
			t.Ops(cellOps)

			if i < m-1 && (!k.UseShuffle || (i+1)%warpSize == 0) {
				// Publish for the lower neighbour; with shuffles enabled
				// only warp-boundary handoffs need shared memory.
				for h := 0; h < s; h++ {
					sharedStoreW(t, dBuf, i*s+h, ts.cur[h])
				}
			}
			// Register renaming for the next column: the value just
			// computed becomes "left"; the neighbour value consumed this
			// step becomes "diag".
			ts.left, ts.cur = ts.cur, ts.left
			ts.diag, ts.up = ts.up, ts.diag

			// §V step 5: when the row is finished, merge the running max
			// arriving from above and pass it on (or write the result).
			if j == n-1 {
				if i > 0 {
					for h := 0; h < s; h++ {
						ts.tmp[h] = sharedLoadW[W](t, rBuf, (i-1)*s+h)
					}
					bitslice.Max(ts.r, ts.r, ts.tmp)
					t.Ops(mergeOps)
				}
				if i < m-1 {
					for h := 0; h < s; h++ {
						sharedStoreW(t, rBuf, i*s+h, ts.r[h])
					}
				} else {
					for h := 0; h < s; h++ {
						storeW(t, k.B.ScorePlanes, int64(g)*int64(s)+int64(h), ts.r[h])
					}
				}
			}
		})
		b.Sync()

		// Phase B: threads that will compute at step+1 fetch their upper
		// neighbour's fresh value.
		b.ForEachThread(func(t *cudasim.Thread) {
			i := t.Tid
			if i == 0 {
				return // row 0's upper neighbour is the zero border
			}
			j := step + 1 - i
			if j < 0 || j >= n {
				return
			}
			ts := &st[i]
			if k.UseShuffle && i%warpSize != 0 {
				// __shfl_up within the warp: thread i-1's value of this
				// step sits in its "left" register after renaming. One
				// shuffle instruction per 32-bit word.
				copy(ts.up, st[i-1].left)
				t.Ops(s * wordsPer)
				return
			}
			for h := 0; h < s; h++ {
				ts.up[h] = sharedLoadW[W](t, dBuf, (i-1)*s+h)
			}
		})
		b.Sync()
	}
}

// warpSize mirrors the paper hardware's warp width for the shuffle path.
const warpSize = 32

// WordwiseKernel is the conventional GPU baseline of Table IV: one block per
// pair, m threads, the same wavefront schedule, but each cell is a plain
// 32-bit integer.
type WordwiseKernel struct {
	L      Layout
	B      *Buffers // Scores receives one int32 per pair at word slots 0..Pairs-1
	Match  int32
	Mismat int32
	Gap    int32
}

// WordwiseCellOps is the per-cell instruction charge of the wordwise
// baseline. Unlike the bit-sliced kernel — whose hundreds of logic
// operations amortise loop and addressing overhead — a wordwise cell is a
// handful of arithmetic instructions wrapped in the same loop machinery, so
// the charge includes index arithmetic, predication and the max cascade.
const WordwiseCellOps = 24

// RunBlock implements cudasim.Kernel.
func (k *WordwiseKernel) RunBlock(b *cudasim.Block) {
	pair := b.Idx
	m, n := k.L.M, k.L.N

	dBuf := b.SharedAlloc(m) // d[i][j] handoff
	rBuf := b.SharedAlloc(m) // running-max chain
	type state struct {
		x                    uint8
		left, diag, up, rmax int32
	}
	st := make([]state, m)
	b.ForEachThread(func(t *cudasim.Thread) {
		i := t.Tid
		st[i].x = t.GlobalLoad8(k.B.XWord, int64(pair)*int64(m)+int64(i))
	})
	b.Sync()

	for step := 0; step <= n+m-2; step++ {
		b.ForEachThread(func(t *cudasim.Thread) {
			i := t.Tid
			j := step - i
			if j < 0 || j >= n {
				return
			}
			ts := &st[i]
			y := t.GlobalLoad8(k.B.YWord, int64(pair)*int64(n)+int64(j))
			w := -k.Mismat
			if y == ts.x {
				w = k.Match
			}
			v := max(0, ts.up-k.Gap, ts.left-k.Gap, ts.diag+w)
			t.Ops(WordwiseCellOps)
			if v > ts.rmax {
				ts.rmax = v
			}
			if i < m-1 {
				t.SharedStore(dBuf, i, uint32(v))
			}
			ts.left = v
			ts.diag = ts.up
			if j == n-1 {
				if i > 0 {
					if prev := int32(t.SharedLoad(rBuf, i-1)); prev > ts.rmax {
						ts.rmax = prev
					}
				}
				if i < m-1 {
					t.SharedStore(rBuf, i, uint32(ts.rmax))
				} else {
					t.GlobalStore32(k.B.Scores, int64(pair), uint32(ts.rmax))
				}
			}
		})
		b.Sync()
		b.ForEachThread(func(t *cudasim.Thread) {
			i := t.Tid
			if i == 0 {
				return
			}
			j := step + 1 - i
			if j < 0 || j >= n {
				return
			}
			st[i].up = int32(t.SharedLoad(dBuf, i-1))
		})
		b.Sync()
	}
}
