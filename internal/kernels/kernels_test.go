package kernels

import (
	"testing"

	"repro/internal/bitslice"
	"repro/internal/cudasim"
	"repro/internal/perfmodel"
)

func TestLayoutValidate(t *testing.T) {
	good := Layout{Pairs: 64, M: 16, N: 64, Lanes: 32, S: 6}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{Pairs: 0, M: 16, N: 64, Lanes: 32, S: 6},
		{Pairs: 1, M: 0, N: 64, Lanes: 32, S: 6},
		{Pairs: 1, M: 65, N: 64, Lanes: 32, S: 6},
		{Pairs: 1, M: 16, N: 64, Lanes: 48, S: 6},
		{Pairs: 1, M: 16, N: 64, Lanes: 32, S: 0},
		{Pairs: 1, M: 16, N: 64, Lanes: 32, S: 33},
		{Pairs: 1, M: 2000, N: 4000, Lanes: 32, S: 6},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %d should be invalid: %+v", i, l)
		}
	}
}

func TestLayoutGroups(t *testing.T) {
	l := Layout{Pairs: 33, M: 8, N: 16, Lanes: 32, S: 5}
	if l.Groups() != 2 {
		t.Errorf("Groups = %d, want 2", l.Groups())
	}
	if l.LaneBytes() != 4 {
		t.Errorf("LaneBytes = %d", l.LaneBytes())
	}
	l.Lanes = 64
	if l.Groups() != 1 || l.LaneBytes() != 8 {
		t.Error("64-lane layout derived values wrong")
	}
}

func TestAllocBuffers(t *testing.T) {
	d := cudasim.NewDevice(perfmodel.TitanX, 1<<20)
	l := Layout{Pairs: 64, M: 16, N: 64, Lanes: 32, S: 6}
	b, err := AllocBuffers(d, l)
	if err != nil {
		t.Fatal(err)
	}
	if b.XWord.Size() != 64*16 || b.YWord.Size() != 64*64 {
		t.Error("wordwise buffer sizes wrong")
	}
	if b.XH.Size() != 2*16*4 { // 2 groups × m × 4 bytes
		t.Errorf("XH size = %d", b.XH.Size())
	}
	if b.ScorePlanes.Size() != 2*6*4 || b.Scores.Size() != 2*32*4 {
		t.Error("score buffer sizes wrong")
	}
	if _, err := AllocBuffers(d, Layout{}); err == nil {
		t.Error("invalid layout should fail")
	}
	tiny := cudasim.NewDevice(perfmodel.TitanX, 64)
	if _, err := AllocBuffers(tiny, l); err == nil {
		t.Error("out-of-memory should fail")
	}
}

func TestSWCellOpsConsistent(t *testing.T) {
	// swCellOps = exact SW count + one extra running max.
	for _, s := range []int{4, 8, 9, 12} {
		var sw, maxB int
		for _, r := range bitslice.OpCounts(s, 2) {
			switch r.Name {
			case "SW":
				sw = r.Ours
			case "max_B":
				maxB = r.Ours
			}
		}
		if got := swCellOps(s); got != sw+maxB {
			t.Errorf("s=%d: swCellOps = %d, want %d", s, got, sw+maxB)
		}
	}
}

func TestRegisterFootprints(t *testing.T) {
	if SWARegs(9, 32) >= SWARegs(9, 64) {
		t.Error("64-lane SWA kernel should use more registers")
	}
	if SWARegs(9, 64) != (4*9+4)*2+16 {
		t.Errorf("SWARegs(9,64) = %d", SWARegs(9, 64))
	}
	if TransposeRegs(64) <= TransposeRegs(32) {
		t.Error("64-lane transpose should use more registers")
	}
	if WordwiseRegs >= SWARegs(9, 32) {
		t.Error("wordwise kernel should be the lightest on registers")
	}
}

func TestW2BKernelGrid(t *testing.T) {
	l := Layout{Pairs: 64, M: 128, N: 1024, Lanes: 32, S: 9}
	kx := &W2BKernel[uint32]{L: l, Length: l.M}
	if kx.Columns() != 2*128 {
		t.Errorf("Columns = %d", kx.Columns())
	}
	if kx.GridDim() != 1 {
		t.Errorf("GridDim = %d, want 1", kx.GridDim())
	}
	ky := &W2BKernel[uint32]{L: l, Length: l.N}
	if ky.GridDim() != 2 {
		t.Errorf("Y GridDim = %d, want 2 (2048 columns)", ky.GridDim())
	}
	kb := &B2WKernel[uint32]{L: l}
	if kb.GridDim() != 1 {
		t.Errorf("B2W GridDim = %d", kb.GridDim())
	}
}

// TestSWAKernelSharedFitsPaperConfig verifies the paper configuration's
// shared-memory demand fits the 48 KiB block limit: m=128 threads × s=9
// planes × 2 buffers = 2304 words ≈ 9 KiB for 32-bit lanes, 18 KiB for
// 64-bit lanes.
func TestSWAKernelSharedFitsPaperConfig(t *testing.T) {
	words32 := 128 * 9 * 2 // dBuf + rBuf
	if words32*4 > 48*1024 {
		t.Fatalf("32-lane shared demand %d bytes exceeds 48KiB", words32*4)
	}
	words64 := words32 * 2
	if words64*4 > 48*1024 {
		t.Fatalf("64-lane shared demand %d bytes exceeds 48KiB", words64*4)
	}
}
