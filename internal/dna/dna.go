// Package dna provides the DNA-sequence substrate of the reproduction:
// the paper's 2-bit base encoding (A=00, G=10, C=11, T=01), sequence types
// in the wordwise, packed, and bit-transposed formats of §II, FASTA-style
// I/O, and seeded random generators with a mutation model for planting
// homologous pairs.
package dna

import (
	"fmt"
	"strings"
)

// Base is a 2-bit encoded DNA base, using the paper's encoding:
// A=00, G=10, C=11, T=01.
type Base uint8

const (
	A Base = 0b00
	T Base = 0b01
	G Base = 0b10
	C Base = 0b11
)

// High returns the high bit of the 2-bit code.
func (b Base) High() uint8 { return uint8(b) >> 1 & 1 }

// Low returns the low bit of the 2-bit code.
func (b Base) Low() uint8 { return uint8(b) & 1 }

// Byte returns the ASCII letter for the base.
func (b Base) Byte() byte {
	switch b & 3 {
	case A:
		return 'A'
	case T:
		return 'T'
	case G:
		return 'G'
	default:
		return 'C'
	}
}

func (b Base) String() string { return string(b.Byte()) }

// ParseBase converts an ASCII letter (either case) to a Base.
func ParseBase(c byte) (Base, error) {
	switch c {
	case 'A', 'a':
		return A, nil
	case 'T', 't':
		return T, nil
	case 'G', 'g':
		return G, nil
	case 'C', 'c':
		return C, nil
	}
	return 0, fmt.Errorf("dna: invalid base %q", c)
}

// Seq is a DNA sequence in "wordwise" format: one Base per element, the
// layout the paper assumes application inputs arrive in.
type Seq []Base

// Parse converts a string of ACGT letters into a sequence.
func Parse(s string) (Seq, error) {
	seq := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		b, err := ParseBase(s[i])
		if err != nil {
			return nil, fmt.Errorf("dna: position %d: %w", i, err)
		}
		seq[i] = b
	}
	return seq, nil
}

// MustParse is Parse for constant inputs in tests and examples.
func MustParse(s string) Seq {
	seq, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return seq
}

func (s Seq) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Byte())
	}
	return sb.String()
}

// Clone returns a copy of the sequence.
func (s Seq) Clone() Seq {
	return append(Seq(nil), s...)
}

// Equal reports whether two sequences are identical.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Packed is the paper's "packed format": four 2-bit bases per byte,
// base i stored at bit offset 2*(i mod 4) of byte i/4. It quarters memory
// against one-byte-per-base wordwise storage (at the price of the "messy
// bitwise operations" §II mentions for element access).
type Packed struct {
	bits []byte
	n    int
}

// Pack converts a sequence into packed format.
func Pack(s Seq) Packed {
	p := Packed{bits: make([]byte, (len(s)+3)/4), n: len(s)}
	for i, b := range s {
		p.bits[i/4] |= uint8(b) << uint(2*(i%4))
	}
	return p
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// At returns base i.
func (p Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic("dna: packed index out of range")
	}
	return Base(p.bits[i/4] >> uint(2*(i%4)) & 3)
}

// Unpack converts back to wordwise format.
func (p Packed) Unpack() Seq {
	s := make(Seq, p.n)
	for i := range s {
		s[i] = p.At(i)
	}
	return s
}

// Bytes exposes the underlying packed storage (for size accounting).
func (p Packed) Bytes() []byte { return p.bits }
