package dna

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrFASTALimit is the sentinel wrapped by every *FASTALimitError, so
// callers can distinguish a policy rejection from a parse failure with
// errors.Is(err, dna.ErrFASTALimit).
var ErrFASTALimit = errors.New("dna: fasta limit exceeded")

// FASTALimits bounds ReadFASTALimited against adversarial input. Zero
// fields are unlimited.
type FASTALimits struct {
	// MaxSeqLen caps the number of bases accumulated per record; parsing
	// stops as soon as a record's body would exceed it, before the memory
	// is spent.
	MaxSeqLen int
	// MaxRecords caps how many records the reader will return.
	MaxRecords int
}

// FASTALimitError reports which record tripped which limit.
type FASTALimitError struct {
	Record string // name of the offending record
	Line   int    // 1-based input line where the limit tripped
	What   string // "sequence length" or "record count"
	Limit  int
}

func (e *FASTALimitError) Error() string {
	return fmt.Sprintf("dna: line %d: record %q exceeds the %s limit (%d)",
		e.Line, e.Record, e.What, e.Limit)
}

// Unwrap makes errors.Is(err, ErrFASTALimit) hold.
func (e *FASTALimitError) Unwrap() error { return ErrFASTALimit }

// Record is one named sequence, as read from or written to FASTA.
type Record struct {
	Name string
	Seq  Seq
}

// WriteFASTA writes records in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, records ...Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.Name); err != nil {
			return err
		}
		s := r.Seq.String()
		for len(s) > 0 {
			n := min(70, len(s))
			if _, err := bw.WriteString(s[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// ReadFASTA parses all records from r with no limits applied. Lines
// starting with ';' are treated as comments; blank lines are skipped. For
// untrusted input use ReadFASTALimited, which bounds memory growth.
func ReadFASTA(r io.Reader) ([]Record, error) {
	return ReadFASTALimited(r, FASTALimits{})
}

// ReadFASTALimited is ReadFASTA hardened against unbounded records: it
// enforces lim while scanning, returning a typed *FASTALimitError (wrapping
// ErrFASTALimit) as soon as a record would exceed a cap — before the
// offending memory is allocated, so adversarial input cannot balloon the
// process.
func ReadFASTALimited(r io.Reader, lim FASTALimits) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records []Record
	var cur *Record
	var body strings.Builder
	flush := func() error {
		if cur == nil {
			return nil
		}
		seq, err := Parse(body.String())
		if err != nil {
			return fmt.Errorf("dna: record %q: %w", cur.Name, err)
		}
		cur.Seq = seq
		records = append(records, *cur)
		cur = nil
		body.Reset()
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			continue
		case strings.HasPrefix(line, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			name := strings.TrimSpace(line[1:])
			if lim.MaxRecords > 0 && len(records) >= lim.MaxRecords {
				return nil, &FASTALimitError{Record: name, Line: lineNo,
					What: "record count", Limit: lim.MaxRecords}
			}
			cur = &Record{Name: name}
		default:
			if cur == nil {
				return nil, fmt.Errorf("dna: line %d: sequence data before header", lineNo)
			}
			if lim.MaxSeqLen > 0 && body.Len()+len(line) > lim.MaxSeqLen {
				return nil, &FASTALimitError{Record: cur.Name, Line: lineNo,
					What: "sequence length", Limit: lim.MaxSeqLen}
			}
			body.WriteString(line)
		}
	}
	if err := sc.Err(); err != nil {
		// lineNo counts fully scanned lines, so the failure is on the next.
		return nil, fmt.Errorf("dna: line %d: %w", lineNo+1, err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return records, nil
}
