package dna

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Record is one named sequence, as read from or written to FASTA.
type Record struct {
	Name string
	Seq  Seq
}

// WriteFASTA writes records in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, records ...Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, ">%s\n", r.Name); err != nil {
			return err
		}
		s := r.Seq.String()
		for len(s) > 0 {
			n := min(70, len(s))
			if _, err := bw.WriteString(s[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// ReadFASTA parses all records from r. Lines starting with ';' are treated
// as comments; blank lines are skipped.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records []Record
	var cur *Record
	var body strings.Builder
	flush := func() error {
		if cur == nil {
			return nil
		}
		seq, err := Parse(body.String())
		if err != nil {
			return fmt.Errorf("dna: record %q: %w", cur.Name, err)
		}
		cur.Seq = seq
		records = append(records, *cur)
		cur = nil
		body.Reset()
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			continue
		case strings.HasPrefix(line, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Record{Name: strings.TrimSpace(line[1:])}
		default:
			if cur == nil {
				return nil, fmt.Errorf("dna: line %d: sequence data before header", lineNo)
			}
			body.WriteString(line)
		}
	}
	if err := sc.Err(); err != nil {
		// lineNo counts fully scanned lines, so the failure is on the next.
		return nil, fmt.Errorf("dna: line %d: %w", lineNo+1, err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return records, nil
}
