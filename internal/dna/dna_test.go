package dna

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncoding(t *testing.T) {
	// The paper's encoding: A=00, G=10, C=11, T=01.
	cases := []struct {
		b      Base
		hi, lo uint8
		letter byte
	}{
		{A, 0, 0, 'A'},
		{T, 0, 1, 'T'},
		{G, 1, 0, 'G'},
		{C, 1, 1, 'C'},
	}
	for _, c := range cases {
		if c.b.High() != c.hi || c.b.Low() != c.lo {
			t.Errorf("%c: bits = %d%d, want %d%d", c.letter, c.b.High(), c.b.Low(), c.hi, c.lo)
		}
		if c.b.Byte() != c.letter {
			t.Errorf("Byte() = %c, want %c", c.b.Byte(), c.letter)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := "ATTCGGACTA"
	seq, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != s {
		t.Errorf("round trip: got %q", seq.String())
	}
	if _, err := Parse("ATXG"); err == nil {
		t.Error("Parse should reject X")
	}
	if _, err := ParseBase('N'); err == nil {
		t.Error("ParseBase should reject N")
	}
	lower, err := Parse("atcg")
	if err != nil || lower.String() != "ATCG" {
		t.Errorf("lowercase parse failed: %v %q", err, lower)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse with bad input did not panic")
		}
	}()
	MustParse("AZ")
}

func TestSeqCloneEqual(t *testing.T) {
	s := MustParse("ACGT")
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = T
	if s.Equal(c) {
		t.Error("mutation of clone affected equality")
	}
	if s.Equal(s[:3]) {
		t.Error("different lengths compare equal")
	}
}

func TestPackedRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		n := int(nRaw % 200)
		s := RandSeq(rng, n)
		p := Pack(s)
		if p.Len() != n {
			return false
		}
		return p.Unpack().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedSize(t *testing.T) {
	p := Pack(RandSeq(rand.New(rand.NewPCG(1, 1)), 100))
	if len(p.Bytes()) != 25 {
		t.Errorf("100 bases pack to %d bytes, want 25", len(p.Bytes()))
	}
}

func TestPackedAtBounds(t *testing.T) {
	p := Pack(MustParse("ACGT"))
	defer func() {
		if recover() == nil {
			t.Error("At(4) did not panic")
		}
	}()
	p.At(4)
}

func TestTransposeGroupMatchesNaive32(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for _, count := range []int{1, 7, 32} {
		seqs := make([]Seq, count)
		for i := range seqs {
			seqs[i] = RandSeq(rng, 50)
		}
		fast, err := TransposeGroup[uint32](seqs)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := TransposeGroupNaive[uint32](seqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if fast.H[i] != naive.H[i] || fast.L[i] != naive.L[i] {
				t.Fatalf("count=%d position %d: fast (%#x,%#x) naive (%#x,%#x)",
					count, i, fast.H[i], fast.L[i], naive.H[i], naive.L[i])
			}
		}
	}
}

func TestTransposeGroupMatchesNaive64(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	seqs := make([]Seq, 64)
	for i := range seqs {
		seqs[i] = RandSeq(rng, 33)
	}
	fast, err := TransposeGroup[uint64](seqs)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := TransposeGroupNaive[uint64](seqs)
	for i := 0; i < 33; i++ {
		if fast.H[i] != naive.H[i] || fast.L[i] != naive.L[i] {
			t.Fatalf("position %d mismatch", i)
		}
	}
}

func TestTransposedLaneRecovers(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	seqs := make([]Seq, 32)
	for i := range seqs {
		seqs[i] = RandSeq(rng, 40)
	}
	tr, err := TransposeGroup[uint32](seqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range seqs {
		if !tr.Lane(k).Equal(s) {
			t.Fatalf("lane %d does not recover sequence", k)
		}
	}
}

func TestTransposeGroupErrors(t *testing.T) {
	if _, err := TransposeGroup[uint32](nil); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := TransposeGroup[uint32](make([]Seq, 33)); err == nil {
		t.Error("oversized group should fail")
	}
	if _, err := TransposeGroup[uint32]([]Seq{MustParse("ACG"), MustParse("AC")}); err == nil {
		t.Error("ragged group should fail")
	}
	if _, err := TransposeGroupNaive[uint32]([]Seq{MustParse("ACG"), MustParse("AC")}); err == nil {
		t.Error("ragged group should fail (naive)")
	}
}

// TestPaperBitTransposeExample reproduces the §II worked example: the first
// pattern column of X0=ATCGA, X1=TCGAC, X2=AAAAA, X3=TTTTT in 4-lane form.
// The paper lists X0^H=0000, X0^L=1010 for column 0 (lanes 3..0 = T,A,T,A).
func TestPaperBitTransposeExample(t *testing.T) {
	seqs := []Seq{
		MustParse("ATCGA"),
		MustParse("TCGAC"),
		MustParse("AAAAA"),
		MustParse("TTTTT"),
	}
	tr, err := TransposeGroupNaive[uint32](seqs)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 characters: A,T,A,T (lanes 0..3). High bits all 0;
	// low bits: lane1 (T) and lane3 (T) set -> 1010 reading lane3..lane0.
	wantH := []uint32{0b0000, 0b0010, 0b0011, 0b0001, 0b0010}
	wantL := []uint32{0b1010, 0b1011, 0b1001, 0b1000, 0b1010}
	for i := range wantH {
		if tr.H[i] != wantH[i] || tr.L[i] != wantL[i] {
			t.Errorf("column %d: got H=%04b L=%04b, paper says H=%04b L=%04b",
				i, tr.H[i], tr.L[i], wantH[i], wantL[i])
		}
	}
}

func TestRandSeqGC(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	s := RandSeqGC(rng, 100000, 0.7)
	gc := 0
	for _, b := range s {
		if b == G || b == C {
			gc++
		}
	}
	frac := float64(gc) / float64(len(s))
	if frac < 0.68 || frac > 0.72 {
		t.Errorf("GC content %.3f far from requested 0.7", frac)
	}
}

func TestMutateRates(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	s := RandSeq(rng, 10000)
	m := MutationModel{SubRate: 0.1}
	mut := m.Mutate(rng, s)
	if len(mut) != len(s) {
		t.Fatalf("sub-only mutation changed length: %d -> %d", len(s), len(mut))
	}
	diff := 0
	for i := range s {
		if s[i] != mut[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(len(s))
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("substitution rate %.3f far from 0.1", frac)
	}
}

func TestMutateIndels(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 13))
	s := RandSeq(rng, 1000)
	longer := MutationModel{InsRate: 0.2}.Mutate(rng, s)
	if len(longer) <= len(s) {
		t.Error("insertions did not lengthen sequence")
	}
	shorter := MutationModel{DelRate: 0.2}.Mutate(rng, s)
	if len(shorter) >= len(s) {
		t.Error("deletions did not shorten sequence")
	}
	if got := (MutationModel{DelRate: 1}).Mutate(rng, s); len(got) == 0 {
		t.Error("full deletion should still leave one base")
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 15))
	pairs := RandomPairs(rng, 10, 16, 64)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if len(p.X) != 16 || len(p.Y) != 64 {
			t.Fatalf("pair has lengths %d,%d", len(p.X), len(p.Y))
		}
	}
}

func TestPlantedPairsContainHomology(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 17))
	pairs := PlantedPairs(rng, 20, 12, 100, 1.0, MutationModel{})
	for i, p := range pairs {
		if !strings.Contains(p.Y.String(), p.X.String()) {
			t.Errorf("pair %d: exact plant not found in text", i)
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(18, 19))
	recs := []Record{
		{Name: "chr1 test", Seq: RandSeq(rng, 150)},
		{Name: "short", Seq: MustParse("ACGT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs...); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || !got[i].Seq.Equal(recs[i].Seq) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("data before header should fail")
	}
	if _, err := ReadFASTA(strings.NewReader(">x\nACGZ\n")); err == nil {
		t.Error("invalid base should fail")
	}
	recs, err := ReadFASTA(strings.NewReader("; comment\n\n>x\nAC\nGT\n"))
	if err != nil || len(recs) != 1 || recs[0].Seq.String() != "ACGT" {
		t.Errorf("comment/multiline parse failed: %v %+v", err, recs)
	}
}

func BenchmarkTransposeGroup32(b *testing.B) {
	rng := rand.New(rand.NewPCG(20, 21))
	seqs := make([]Seq, 32)
	for i := range seqs {
		seqs[i] = RandSeq(rng, 1024)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TransposeGroup[uint32](seqs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, T: A, G: C, C: G}
	for b, want := range pairs {
		if b.Complement() != want {
			t.Errorf("%v complement = %v, want %v", b, b.Complement(), want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	s := MustParse("AACGT")
	rc := s.ReverseComplement()
	if rc.String() != "ACGTT" {
		t.Errorf("revcomp = %s, want ACGTT", rc)
	}
	// Involution.
	if !rc.ReverseComplement().Equal(s) {
		t.Error("reverse complement twice is not identity")
	}
	if len(Seq(nil).ReverseComplement()) != 0 {
		t.Error("empty revcomp should be empty")
	}
}

func TestReverseComplementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 50))
		s := RandSeq(rng, rng.IntN(100))
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
