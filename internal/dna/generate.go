package dna

import (
	"math/rand/v2"
)

// RandSeq returns a uniformly random sequence of length n.
func RandSeq(rng *rand.Rand, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = Base(rng.Uint32() & 3)
	}
	return s
}

// RandSeqGC returns a random sequence of length n with the given GC content
// (probability that a base is G or C), for workloads with realistic base
// composition.
func RandSeqGC(rng *rand.Rand, n int, gc float64) Seq {
	s := make(Seq, n)
	for i := range s {
		if rng.Float64() < gc {
			if rng.Uint32()&1 == 0 {
				s[i] = G
			} else {
				s[i] = C
			}
		} else {
			if rng.Uint32()&1 == 0 {
				s[i] = A
			} else {
				s[i] = T
			}
		}
	}
	return s
}

// MutationModel describes how a planted homologous copy of a pattern is
// perturbed when embedded into a text.
type MutationModel struct {
	SubRate float64 // probability a base is substituted
	InsRate float64 // probability an insertion occurs after a base
	DelRate float64 // probability a base is deleted
}

// Mutate returns a mutated copy of s under the model.
func (m MutationModel) Mutate(rng *rand.Rand, s Seq) Seq {
	out := make(Seq, 0, len(s)+4)
	for _, b := range s {
		if rng.Float64() < m.DelRate {
			continue
		}
		if rng.Float64() < m.SubRate {
			// Substitute with a different base.
			nb := Base(rng.Uint32() & 3)
			for nb == b {
				nb = Base(rng.Uint32() & 3)
			}
			b = nb
		}
		out = append(out, b)
		if rng.Float64() < m.InsRate {
			out = append(out, Base(rng.Uint32()&3))
		}
	}
	if len(out) == 0 {
		out = append(out, Base(rng.Uint32()&3))
	}
	return out
}

// Pair is one Smith-Waterman problem instance: a pattern X and a text Y.
type Pair struct {
	X, Y Seq
}

// RandomPairs generates count independent random (X, Y) pairs with the given
// lengths — the paper's evaluation workload (random DNA strands).
func RandomPairs(rng *rand.Rand, count, m, n int) []Pair {
	pairs := make([]Pair, count)
	for i := range pairs {
		pairs[i] = Pair{X: RandSeq(rng, m), Y: RandSeq(rng, n)}
	}
	return pairs
}

// PlantedPairs generates pairs where, with probability plantProb, a mutated
// copy of X is embedded at a random position of Y — the database-screening
// scenario the paper motivates (§III: find pairs whose best local alignment
// exceeds a threshold τ, then align those on the CPU).
func PlantedPairs(rng *rand.Rand, count, m, n int, plantProb float64, mut MutationModel) []Pair {
	pairs := make([]Pair, count)
	for i := range pairs {
		x := RandSeq(rng, m)
		y := RandSeq(rng, n)
		if rng.Float64() < plantProb {
			copyX := mut.Mutate(rng, x)
			if len(copyX) > n {
				copyX = copyX[:n]
			}
			at := rng.IntN(n - len(copyX) + 1)
			copy(y[at:], copyX)
		}
		pairs[i] = Pair{X: x, Y: y}
	}
	return pairs
}
