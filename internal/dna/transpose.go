package dna

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/word"
)

// Transposed holds one lane-group of W equal-length sequences in the
// bit-transpose format of §II: bit k of H[i] (resp. L[i]) is the high (resp.
// low) bit of the 2-bit code of base i of sequence k.
type Transposed[W word.Word] struct {
	H, L []W
	// Count is the number of real sequences (1..W); lanes >= Count are
	// zero-padded (all-A) and their results are meaningless.
	Count int
}

// Len returns the common sequence length.
func (t *Transposed[W]) Len() int { return len(t.H) }

// Lane reconstructs sequence k (mostly for tests).
func (t *Transposed[W]) Lane(k int) Seq {
	s := make(Seq, len(t.H))
	for i := range s {
		hi := uint8(t.H[i] >> uint(k) & 1)
		lo := uint8(t.L[i] >> uint(k) & 1)
		s[i] = Base(hi<<1 | lo)
	}
	return s
}

// TransposeGroup converts up to W equal-length wordwise sequences into
// bit-transpose format using the paper's method: one 2-bit-value
// w×w bit-matrix transpose per character column (127 operations for 32
// lanes, per Table I). Missing lanes are padded with all-A (zero) sequences.
func TransposeGroup[W word.Word](seqs []Seq) (*Transposed[W], error) {
	t := &Transposed[W]{}
	if err := TransposeGroupInto(t, make([]W, word.Lanes[W]()), seqs); err != nil {
		return nil, err
	}
	return t, nil
}

// TransposeGroupInto is TransposeGroup writing into caller-owned storage, for
// hot paths that transpose one group after another: t's planes are resliced
// in place when their capacity suffices (no allocation in the steady state),
// and col is the lanes-word column scratch, reused across calls. col must
// hold at least W words.
func TransposeGroupInto[W word.Word](t *Transposed[W], col []W, seqs []Seq) error {
	lanes := word.Lanes[W]()
	if len(seqs) == 0 || len(seqs) > lanes {
		return fmt.Errorf("dna: TransposeGroup needs 1..%d sequences, got %d", lanes, len(seqs))
	}
	if len(col) < lanes {
		return fmt.Errorf("dna: TransposeGroupInto needs %d scratch words, got %d", lanes, len(col))
	}
	col = col[:lanes]
	n := len(seqs[0])
	for i, s := range seqs {
		if len(s) != n {
			return fmt.Errorf("dna: TransposeGroup: sequence %d has length %d, want %d", i, len(s), n)
		}
	}
	t.H = growWords(t.H, n)
	t.L = growWords(t.L, n)
	t.Count = len(seqs)
	plan := bitmat.CachedPlan(lanes, 2, bitmat.ValuesToPlanes)
	for i := 0; i < n; i++ {
		for k := range col {
			col[k] = 0
		}
		for k, s := range seqs {
			col[k] = W(s[i]) // 2-bit value in wordwise format
		}
		bitmat.Apply(plan, col)
		t.L[i] = col[0] // plane 0 = low bits
		t.H[i] = col[1] // plane 1 = high bits
	}
	return nil
}

// growWords reslices s to length n, allocating only when the capacity is too
// small. Contents are unspecified: every element is overwritten by the caller.
func growWords[W word.Word](s []W, n int) []W {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]W, n)
}

// TransposeGroupNaive is the reference bit-by-bit conversion used to
// validate TransposeGroup.
func TransposeGroupNaive[W word.Word](seqs []Seq) (*Transposed[W], error) {
	lanes := word.Lanes[W]()
	if len(seqs) == 0 || len(seqs) > lanes {
		return nil, fmt.Errorf("dna: TransposeGroupNaive needs 1..%d sequences, got %d", lanes, len(seqs))
	}
	n := len(seqs[0])
	for i, s := range seqs {
		if len(s) != n {
			return nil, fmt.Errorf("dna: sequence %d has length %d, want %d", i, len(s), n)
		}
	}
	t := &Transposed[W]{H: make([]W, n), L: make([]W, n), Count: len(seqs)}
	for k, s := range seqs {
		for i, b := range s {
			if b.High() != 0 {
				t.H[i] |= W(1) << uint(k)
			}
			if b.Low() != 0 {
				t.L[i] |= W(1) << uint(k)
			}
		}
	}
	return t, nil
}
