package dna

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzReadFASTA checks that any input either fails cleanly or round-trips
// exactly through WriteFASTA → ReadFASTA.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc with spaces\nACGT\nGGTT\n")
	f.Add(";comment\n>b\n  AC GT\n")  // whitespace inside a line fails Parse
	f.Add("ACGT\n>late-header\nAC\n") // data before header
	f.Add(">empty\n>also-empty\n")    // records with no sequence
	f.Add(">>gt-in-name\nACGT\n")     // name begins with '>'
	f.Add(">x\nacgt\n")               // case handling per Parse
	f.Add("\n\n;only comments\n\n")   // no records at all
	f.Add(">dup\nA\n>dup\nC\n")       // duplicate names
	f.Add(">crlf\r\nACGT\r\n")        // windows line endings
	f.Add(">bad\nACGU\n")             // invalid base
	f.Fuzz(func(t *testing.T, in string) {
		// The limited reader must agree with the unlimited one: it either
		// fails with the typed limit error, or returns identical records
		// all within bounds. It must never grow a record past the cap.
		lim := FASTALimits{MaxSeqLen: 8, MaxRecords: 3}
		lrecs, lerr := ReadFASTALimited(strings.NewReader(in), lim)
		if lerr == nil {
			if len(lrecs) > lim.MaxRecords {
				t.Fatalf("limited read returned %d records, cap %d", len(lrecs), lim.MaxRecords)
			}
			for _, r := range lrecs {
				if len(r.Seq) > lim.MaxSeqLen {
					t.Fatalf("limited read returned %d-base record %q, cap %d",
						len(r.Seq), r.Name, lim.MaxSeqLen)
				}
			}
		}

		recs, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			if lerr == nil && err.Error() != "" {
				// A parse failure the limited reader missed can only mean
				// the limit tripped first on a record the unlimited parse
				// rejects later — but lerr == nil says no limit tripped.
				t.Fatalf("unlimited read failed (%v) but limited read succeeded", err)
			}
			return // rejected cleanly
		}
		if lerr != nil && !errors.Is(lerr, ErrFASTALimit) {
			t.Fatalf("limited read failed untyped on input the unlimited read accepts: %v", lerr)
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs...); err != nil {
			t.Fatalf("WriteFASTA of parsed records: %v", err)
		}
		back, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("re-read of written FASTA: %v\ninput: %q\nwritten: %q", err, in, buf.String())
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip: %d records became %d", len(recs), len(back))
		}
		for i := range recs {
			if back[i].Name != recs[i].Name {
				t.Fatalf("record %d name %q became %q", i, recs[i].Name, back[i].Name)
			}
			if !back[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d sequence changed: %q -> %q", i, recs[i].Seq, back[i].Seq)
			}
		}
	})
}

func TestReadFASTALimitedSeqLen(t *testing.T) {
	in := ">ok\nACGT\n>huge\nACGTACGT\nACGTACGT\n"
	recs, err := ReadFASTALimited(strings.NewReader(in), FASTALimits{MaxSeqLen: 8})
	if recs != nil {
		t.Fatalf("limited read returned records alongside the error: %v", recs)
	}
	var le *FASTALimitError
	if !errors.As(err, &le) || !errors.Is(err, ErrFASTALimit) {
		t.Fatalf("want *FASTALimitError wrapping ErrFASTALimit, got %v", err)
	}
	if le.Record != "huge" || le.What != "sequence length" || le.Limit != 8 || le.Line != 5 {
		t.Fatalf("limit error details: %+v", le)
	}
	// Exactly at the cap is fine.
	if _, err := ReadFASTALimited(strings.NewReader(">x\nACGTACGT\n"), FASTALimits{MaxSeqLen: 8}); err != nil {
		t.Fatalf("at-cap record rejected: %v", err)
	}
}

func TestReadFASTALimitedRecordCount(t *testing.T) {
	in := ">a\nA\n>b\nC\n>c\nG\n"
	_, err := ReadFASTALimited(strings.NewReader(in), FASTALimits{MaxRecords: 2})
	var le *FASTALimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *FASTALimitError, got %v", err)
	}
	if le.Record != "c" || le.What != "record count" || le.Limit != 2 {
		t.Fatalf("limit error details: %+v", le)
	}
	recs, err := ReadFASTALimited(strings.NewReader(in), FASTALimits{MaxRecords: 3})
	if err != nil || len(recs) != 3 {
		t.Fatalf("at-cap records: %d, %v", len(recs), err)
	}
}

func TestReadFASTAUnlimitedByDefault(t *testing.T) {
	in := ">a\n" + strings.Repeat("ACGT", 64) + "\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil || len(recs) != 1 || len(recs[0].Seq) != 256 {
		t.Fatalf("unlimited read: %d records, %v", len(recs), err)
	}
}

func TestReadFASTADataBeforeHeaderNamesLine(t *testing.T) {
	_, err := ReadFASTA(strings.NewReader(";c\n\nACGT\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want data-before-header error naming line 3, got %v", err)
	}
}

func TestReadFASTAScannerOverflowWrapsLineNumber(t *testing.T) {
	// One line beyond the scanner's 16 MiB token limit.
	var b strings.Builder
	b.WriteString(">huge\n")
	b.WriteString(strings.Repeat("A", 16*1024*1024+2))
	b.WriteString("\n")
	_, err := ReadFASTA(strings.NewReader(b.String()))
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("want bufio.ErrTooLong, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("scanner error should carry the line number: %v", err)
	}
}
