package dna

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzReadFASTA checks that any input either fails cleanly or round-trips
// exactly through WriteFASTA → ReadFASTA.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc with spaces\nACGT\nGGTT\n")
	f.Add(";comment\n>b\n  AC GT\n")  // whitespace inside a line fails Parse
	f.Add("ACGT\n>late-header\nAC\n") // data before header
	f.Add(">empty\n>also-empty\n")    // records with no sequence
	f.Add(">>gt-in-name\nACGT\n")     // name begins with '>'
	f.Add(">x\nacgt\n")               // case handling per Parse
	f.Add("\n\n;only comments\n\n")   // no records at all
	f.Add(">dup\nA\n>dup\nC\n")       // duplicate names
	f.Add(">crlf\r\nACGT\r\n")        // windows line endings
	f.Add(">bad\nACGU\n")             // invalid base
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs...); err != nil {
			t.Fatalf("WriteFASTA of parsed records: %v", err)
		}
		back, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("re-read of written FASTA: %v\ninput: %q\nwritten: %q", err, in, buf.String())
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip: %d records became %d", len(recs), len(back))
		}
		for i := range recs {
			if back[i].Name != recs[i].Name {
				t.Fatalf("record %d name %q became %q", i, recs[i].Name, back[i].Name)
			}
			if !back[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d sequence changed: %q -> %q", i, recs[i].Seq, back[i].Seq)
			}
		}
	})
}

func TestReadFASTADataBeforeHeaderNamesLine(t *testing.T) {
	_, err := ReadFASTA(strings.NewReader(";c\n\nACGT\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want data-before-header error naming line 3, got %v", err)
	}
}

func TestReadFASTAScannerOverflowWrapsLineNumber(t *testing.T) {
	// One line beyond the scanner's 16 MiB token limit.
	var b strings.Builder
	b.WriteString(">huge\n")
	b.WriteString(strings.Repeat("A", 16*1024*1024+2))
	b.WriteString("\n")
	_, err := ReadFASTA(strings.NewReader(b.String()))
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("want bufio.ErrTooLong, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("scanner error should carry the line number: %v", err)
	}
}
