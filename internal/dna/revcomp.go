package dna

// Complement returns the Watson-Crick complement of a base. Under the
// paper's encoding (A=00, T=01, G=10, C=11) complementing is flipping the
// low bit: A↔T and G↔C.
func (b Base) Complement() Base {
	return b ^ 1
}

// ReverseComplement returns the reverse complement of s — the other strand
// read 5'→3'. Screening both strands is the standard genomics workflow the
// dbfilter tool exposes.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}
