package aligncache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/swa"
)

func testCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c := New(cfg)
	if c == nil {
		t.Fatalf("New(%+v) = nil, want live cache", cfg)
	}
	return c
}

func pairKey(i int) (Key, dna.Seq, dna.Seq) {
	x := dna.MustParse("ACGTACGT")
	// Build a distinct text per i from the base alphabet.
	text := make(dna.Seq, 16)
	for j := range text {
		text[j] = dna.Base((i >> (j % 4)) & 3)
	}
	return KeyOf(x, text, swa.PaperScoring, 32), x, text
}

func TestKeyOfInjective(t *testing.T) {
	x := dna.MustParse("ACGT")
	y := dna.MustParse("ACGTACGT")
	base := KeyOf(x, y, swa.PaperScoring, 32)
	variants := []Key{
		KeyOf(dna.MustParse("ACGA"), y, swa.PaperScoring, 32),                         // pattern bytes
		KeyOf(x, dna.MustParse("ACGTACGA"), swa.PaperScoring, 32),                     // text bytes
		KeyOf(x, y, swa.Scoring{Match: 3, Mismatch: 1, Gap: 1}, 32),                   // scoring
		KeyOf(x, y, swa.PaperScoring, 64),                                             // lanes
		KeyOf(dna.MustParse("ACGTA"), dna.MustParse("CGTACGT"), swa.PaperScoring, 32), // x/y boundary shift
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
	if again := KeyOf(x, y, swa.PaperScoring, 32); again != base {
		t.Errorf("KeyOf is not deterministic")
	}
}

func TestHitMissAndStats(t *testing.T) {
	c := testCache(t, Config{MaxBytes: 1 << 20})
	k, x, y := pairKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 42, Cost(x, y))
	if got, ok := c.Get(k); !ok || got != 42 {
		t.Fatalf("Get = (%d, %v), want (42, true)", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d out of (0, %d]", st.Bytes, st.MaxBytes)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	k, x, y := pairKey(1)
	if c.Enabled() {
		t.Fatal("nil cache reports enabled")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("nil cache hit")
	}
	score, ok, f, leader := c.Lookup(k)
	if ok || f != nil || leader || score != 0 {
		t.Fatalf("nil Lookup = (%d,%v,%v,%v), want degenerate miss", score, ok, f, leader)
	}
	c.Put(k, 1, Cost(x, y))      // must not panic
	c.Fulfill(k, nil, 1, 0, nil) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
}

// TestSingleComputationPerKey hammers a mix of identical and distinct keys
// from many goroutines and asserts, via a counting computation, that every
// key is computed exactly once — the singleflight guarantee.
func TestSingleComputationPerKey(t *testing.T) {
	c := testCache(t, Config{MaxBytes: 1 << 20, Shards: 4})
	const (
		keys       = 8
		goroutines = 32
		rounds     = 25
	)
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				i := (g + r) % keys
				k, x, y := pairKey(i)
				want := 1000 + i
				score, ok, f, leader := c.Lookup(k)
				switch {
				case ok:
				case leader:
					computes[i].Add(1)
					score = want
					c.Fulfill(k, f, score, Cost(x, y), nil)
				case f != nil:
					var err error
					score, err = f.Wait(context.Background())
					if err != nil {
						t.Errorf("follower wait: %v", err)
						return
					}
				default:
					t.Error("live cache returned the degenerate outcome")
					return
				}
				if score != want {
					t.Errorf("key %d: score %d, want %d", i, score, want)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	for i := range computes {
		if n := computes[i].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", i, n)
		}
	}
	st := c.Stats()
	if st.Coalesced+st.Hits != goroutines*rounds-keys {
		t.Errorf("hits %d + coalesced %d != %d lookups - %d computes",
			st.Hits, st.Coalesced, goroutines*rounds, keys)
	}
}

// TestNoStaleHitAfterEviction fills the cache past its bound and asserts
// evicted keys miss (and, once re-inserted with a new score, serve the new
// score — no resurrection of stale entries).
func TestNoStaleHitAfterEviction(t *testing.T) {
	// One shard so the LRU order is global and deterministic.
	c := testCache(t, Config{MaxBytes: 4 * Cost(dna.MustParse("ACGTACGT"), make(dna.Seq, 16)), Shards: 1})
	const n = 32
	for i := 0; i < n; i++ {
		k, x, y := pairKey(i)
		c.Put(k, i, Cost(x, y))
	}
	if c.Len() >= n {
		t.Fatalf("no eviction happened: %d entries live", c.Len())
	}
	st := c.Stats()
	if st.EvictionsLRU == 0 {
		t.Fatal("no LRU evictions recorded")
	}
	// The oldest keys must be gone; a hit on them would be stale.
	k0, x0, y0 := pairKey(0)
	if got, ok := c.Get(k0); ok {
		t.Fatalf("stale hit on evicted key: %d", got)
	}
	// Re-insert with a different score: the next hit must see the new value.
	c.Put(k0, 999, Cost(x0, y0))
	if got, ok := c.Get(k0); !ok || got != 999 {
		t.Fatalf("after re-insert: (%d, %v), want (999, true)", got, ok)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := testCache(t, Config{MaxBytes: 1 << 20, TTL: time.Minute, now: clock})
	k, x, y := pairKey(7)
	c.Put(k, 7, Cost(x, y))
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if got, ok := c.Get(k); ok {
		t.Fatalf("expired entry served: %d", got)
	}
	if st := c.Stats(); st.EvictionsTTL != 1 || st.Entries != 0 {
		t.Fatalf("stats after expiry = %+v, want 1 ttl eviction, 0 entries", st)
	}
	// Lookup must also treat it as a miss and elect a leader.
	c.Put(k, 7, Cost(x, y))
	now = now.Add(2 * time.Minute)
	_, ok, f, leader := c.Lookup(k)
	if ok || !leader {
		t.Fatalf("Lookup on expired entry: ok=%v leader=%v, want miss+leader", ok, leader)
	}
	c.Fulfill(k, f, 7, Cost(x, y), nil)
}

// TestFlightErrorPropagates checks a failed leader releases followers with
// the error and does not poison the cache: the next Lookup elects a new
// leader.
func TestFlightErrorPropagates(t *testing.T) {
	c := testCache(t, Config{MaxBytes: 1 << 20})
	k, x, y := pairKey(3)
	_, _, f, leader := c.Lookup(k)
	if !leader {
		t.Fatal("first Lookup not leader")
	}
	_, _, f2, leader2 := c.Lookup(k)
	if leader2 || f2 != f {
		t.Fatal("second Lookup did not coalesce onto the first flight")
	}
	wantErr := fmt.Errorf("kernel exploded")
	done := make(chan error, 1)
	go func() {
		_, err := f2.Wait(context.Background())
		done <- err
	}()
	c.Fulfill(k, f, 0, Cost(x, y), wantErr)
	if err := <-done; err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("follower got %v, want %v", err, wantErr)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed computation was cached")
	}
	_, _, _, leader3 := c.Lookup(k)
	if !leader3 {
		t.Fatal("key not retryable after failed flight")
	}
}

func TestFlightWaitHonoursContext(t *testing.T) {
	c := testCache(t, Config{MaxBytes: 1 << 20})
	k, _, _ := pairKey(5)
	_, _, f, leader := c.Lookup(k)
	if !leader {
		t.Fatal("not leader")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	c.Fulfill(k, f, 1, 1, nil) // leader must still fulfill; no goroutine leak
}

func TestNewDisabled(t *testing.T) {
	if c := New(Config{MaxBytes: 0}); c != nil {
		t.Fatal("MaxBytes=0 should return the nil cache")
	}
	if c := New(Config{MaxBytes: -5}); c != nil {
		t.Fatal("negative MaxBytes should return the nil cache")
	}
}
