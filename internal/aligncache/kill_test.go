package aligncache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cudasim"
)

// When the leader's device is killed mid-flight, every follower must get the
// typed device-loss error promptly — never hang — and the failed flight must
// not be cached: the next Lookup is a fresh miss with a new leader, and that
// leader's success is what finally sticks.
func TestSingleflightLeaderKilledTyped(t *testing.T) {
	c := testCache(t, Config{MaxBytes: 1 << 20})
	k, x, y := pairKey(1)

	_, ok, flight, leader := c.Lookup(k)
	if ok || !leader {
		t.Fatalf("first lookup: ok=%v leader=%v, want miss+leader", ok, leader)
	}

	const followers = 8
	errs := make(chan error, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ok, f, lead := c.Lookup(k)
			if ok || lead || f == nil {
				errs <- errors.New("follower was not coalesced onto the flight")
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, err := f.Wait(ctx)
			errs <- err
		}()
	}

	// Give the followers a moment to coalesce, then the leader's device dies
	// mid-computation and the leader publishes the failure.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	killErr := &cudasim.KilledError{Op: cudasim.FaultLaunch}
	c.Fulfill(k, flight, 0, Cost(x, y), killErr)

	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("follower got a score from a killed leader")
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatal("follower hung until its deadline instead of being released")
		}
		if !errors.Is(err, cudasim.ErrDeviceKilled) {
			t.Fatalf("follower error not typed: %v", err)
		}
	}

	// The failure must not be cached: the key is retryable with a new leader.
	if _, hit := c.Get(k); hit {
		t.Fatal("failed flight was cached")
	}
	_, ok, flight2, leader2 := c.Lookup(k)
	if ok || !leader2 || flight2 == flight {
		t.Fatalf("retry lookup: ok=%v leader=%v sameFlight=%v, want fresh miss+leader",
			ok, leader2, flight2 == flight)
	}
	c.Fulfill(k, flight2, 42, Cost(x, y), nil)
	if got, hit := c.Get(k); !hit || got != 42 {
		t.Fatalf("recomputed score not cached: got=%d hit=%v", got, hit)
	}
}
