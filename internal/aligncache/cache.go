// Package aligncache memoizes alignment scores by content: a sharded,
// bounded LRU keyed by a cryptographic hash of everything that determines a
// score — the pattern bytes, the text bytes, the scoring scheme and the lane
// width — so a hit is byte-identical to a recompute by construction (see
// DESIGN.md §11 for the correctness argument). Real alignment traffic is
// highly redundant (database screening re-runs the same pattern panels;
// job replay re-submits the same chunks), and a hit costs one hash and one
// map lookup instead of the full bit-parallel dynamic program.
//
// Three mechanisms keep the cache honest under load:
//
//   - Bounded memory: every entry is charged its sequence bytes plus a fixed
//     overhead against MaxBytes; inserting past the bound evicts from the
//     least-recently-used tail.
//   - TTL: entries older than TTL are treated as misses and evicted on
//     contact, so a long-lived server does not serve unbounded-age results.
//   - Singleflight: concurrent lookups of the same key coalesce onto one
//     in-flight computation (Lookup elects a leader; followers Wait on its
//     Flight), so a thundering herd of identical requests computes once.
//
// Every operation is instrumented through internal/obs: hit/miss/coalesced
// and per-reason eviction counters, entry and byte gauges, and a
// lookup-latency histogram, all under the aligncache_ metric prefix.
//
// A nil *Cache is valid and inert: every method is a no-op returning a miss,
// so callers wire `var c *aligncache.Cache` through unconditionally and the
// disabled configuration stays byte-identical to the uncached code path.
package aligncache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/swa"
)

// Key is the content address of one (pattern, text, scoring, lanes) scoring
// problem: a SHA-256 over a domain-separated encoding of all four. Two keys
// are equal iff the inputs the score depends on are identical, so a cache
// hit can never return a score the engines would not have produced.
type Key [32]byte

// keyVersion is the first byte of the hashed encoding; bump it if the
// encoding (or the meaning of a score) ever changes, so stale processes
// sharing a key format can never alias.
const keyVersion = 1

// keyBufPool recycles the hash staging buffer so KeyOf performs no
// steady-state allocation on the hot path.
var keyBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// KeyOf derives the content-addressed key of one pair under a scoring scheme
// and lane width. The encoding is injective: fixed-width header (version,
// lanes, match, mismatch, gap, len(x)) followed by the raw 2-bit-coded
// pattern and text bytes — the pattern length delimits where x ends and y
// begins, and shapes are uniform per batch, so no two distinct inputs share
// an encoding.
//
// The serving backend is deliberately NOT part of the key. Every backend
// (bitwise-sim, wordwise-sim, striped, cpu-ref) is required to produce
// byte-identical scores for the same (pattern, text, scoring, lanes) —
// the sim pipelines are validated against the CPU reference and the
// striped engine is exact by construction — so an entry filled by one
// backend may be served to a request targeting any other. If a future
// backend can legitimately return different scores for the same inputs
// (approximate or banded alignment, say), its identity must be folded
// into this key (and keyVersion bumped), or its results must bypass the
// cache entirely. alignsvc's cross-backend cache test enforces the
// invariant for the current backends.
func KeyOf(x, y dna.Seq, sc swa.Scoring, lanes int) Key {
	bp := keyBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	var hdr [44]byte
	hdr[0] = keyVersion
	binary.LittleEndian.PutUint64(hdr[4:], uint64(lanes))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(int64(sc.Match)))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(int64(sc.Mismatch)))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(int64(sc.Gap)))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(len(x)))
	b = append(b, hdr[:]...)
	for _, c := range x {
		b = append(b, byte(c))
	}
	for _, c := range y {
		b = append(b, byte(c))
	}
	k := Key(sha256.Sum256(b))
	*bp = b[:0]
	keyBufPool.Put(bp)
	return k
}

// entryOverheadBytes approximates the fixed per-entry cost (key copy, list
// element, map slot, entry struct) charged against MaxBytes on top of the
// sequence bytes, so MaxBytes bounds real memory, not just payload.
const entryOverheadBytes = 160

// Cost returns the MaxBytes charge of caching one pair's score.
func Cost(x, y dna.Seq) int64 {
	return int64(len(x)) + int64(len(y)) + entryOverheadBytes
}

// Config tunes a Cache. MaxBytes <= 0 disables caching entirely (New
// returns nil, and the nil Cache is inert).
type Config struct {
	// MaxBytes bounds the total charged size of cached entries; inserts past
	// it evict least-recently-used entries. <= 0 disables the cache.
	MaxBytes int64
	// TTL is the maximum age of a served entry (0 = no expiry). Expired
	// entries count as misses and are evicted when touched.
	TTL time.Duration
	// Shards is the number of independently locked shards (default 16).
	// Keys distribute uniformly (they are hashes), so contention drops
	// roughly linearly in Shards.
	Shards int
	// Metrics receives the aligncache_ counters, gauges and the
	// lookup-latency histogram (nil = obs.Default()).
	Metrics *obs.Registry

	// now replaces the TTL clock in tests.
	now func() time.Time
}

// Flight is one in-flight computation of a key. The leader that Lookup
// elected computes the score and publishes it with Cache.Fulfill; followers
// block in Wait until then.
type Flight struct {
	done  chan struct{}
	score int
	err   error
}

// Wait blocks until the leader fulfills the flight or ctx expires, then
// returns the leader's score or error. A ctx error belongs to the waiter; a
// flight error means the leader's computation failed and the waiter should
// recompute (or propagate) itself.
func (f *Flight) Wait(ctx context.Context) (int, error) {
	select {
	case <-f.done:
		return f.score, f.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// entry is one cached score. Entries live in a shard's LRU list; the map
// points at the list element.
type entry struct {
	key     Key
	score   int
	cost    int64
	expires time.Time // zero when TTL is disabled
}

type shard struct {
	mu      sync.Mutex
	byKey   map[Key]*list.Element // -> *entry (element value)
	lru     *list.List            // front = most recently used
	flights map[Key]*Flight
	bytes   int64
}

// Cache is a sharded, bounded, TTL-expiring score cache with singleflight
// in-flight dedup. Create with New; all methods are safe for concurrent use
// and safe on a nil receiver (inert misses).
type Cache struct {
	cfg    Config
	shards []*shard

	hits, misses, coalesced atomic.Int64
	evictLRU, evictTTL      atomic.Int64
	entries, bytes          atomic.Int64

	mHits, mMisses, mCoalesced *obs.Counter
	mEvictLRU, mEvictTTL       *obs.Counter
	gEntries, gBytes           *obs.Gauge
	lookupLat                  *obs.Histogram
}

// New builds a cache, or returns nil (the inert cache) when cfg.MaxBytes
// disables it.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Cache{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			byKey:   make(map[Key]*list.Element),
			lru:     list.New(),
			flights: make(map[Key]*Flight),
		}
	}
	reg := cfg.Metrics
	reg.Help("aligncache_hits_total", "Cache lookups served from a stored score.")
	reg.Help("aligncache_misses_total", "Cache lookups that found no live entry.")
	reg.Help("aligncache_coalesced_total", "Lookups that joined an in-flight computation instead of starting one.")
	reg.Help("aligncache_evictions_total", "Entries evicted, by reason (lru = size bound, ttl = expiry).")
	reg.Help("aligncache_entries", "Live cached scores.")
	reg.Help("aligncache_bytes", "Charged bytes of live cached scores.")
	reg.Help("aligncache_lookup_seconds", "Latency of cache lookups (hit or miss, excluding flight waits).")
	c.mHits = reg.Counter("aligncache_hits_total")
	c.mMisses = reg.Counter("aligncache_misses_total")
	c.mCoalesced = reg.Counter("aligncache_coalesced_total")
	c.mEvictLRU = reg.Counter(obs.L("aligncache_evictions_total", "reason", "lru"))
	c.mEvictTTL = reg.Counter(obs.L("aligncache_evictions_total", "reason", "ttl"))
	c.gEntries = reg.Gauge("aligncache_entries")
	c.gBytes = reg.Gauge("aligncache_bytes")
	c.lookupLat = reg.Histogram("aligncache_lookup_seconds", obs.LatencyBuckets)
	return c
}

// Enabled reports whether the cache is live (non-nil).
func (c *Cache) Enabled() bool { return c != nil }

func (c *Cache) shardFor(k Key) *shard {
	// Keys are uniform hashes; the first bytes index shards evenly.
	return c.shards[int(binary.LittleEndian.Uint32(k[:4]))%len(c.shards)]
}

// Lookup resolves one key atomically into one of three outcomes:
//
//   - hit: ok is true and score holds the cached value;
//   - leader: flight is non-nil and leader is true — the caller MUST compute
//     the score and publish it with Fulfill (even on failure), or followers
//     block until their contexts expire;
//   - follower: flight is non-nil and leader is false — another goroutine is
//     computing this key; Wait on the flight instead of recomputing.
//
// On a nil cache every Lookup returns the fourth, degenerate outcome
// (ok=false, flight=nil): compute yourself and publish nowhere.
func (c *Cache) Lookup(k Key) (score int, ok bool, flight *Flight, leader bool) {
	if c == nil {
		return 0, false, nil, false
	}
	begin := time.Now()
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, live := sh.byKey[k]; live {
		e := el.Value.(*entry)
		if e.expires.IsZero() || c.cfg.now().Before(e.expires) {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			c.mHits.Inc()
			c.lookupLat.ObserveDuration(time.Since(begin))
			return e.score, true, nil, false
		}
		// Expired on contact: evict and fall through to the miss path.
		c.removeLocked(sh, el)
		c.evictTTL.Add(1)
		c.mEvictTTL.Inc()
	}
	if f, inflight := sh.flights[k]; inflight {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		c.mCoalesced.Inc()
		c.lookupLat.ObserveDuration(time.Since(begin))
		return 0, false, f, false
	}
	f := &Flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()
	c.misses.Add(1)
	c.mMisses.Inc()
	c.lookupLat.ObserveDuration(time.Since(begin))
	return 0, false, f, true
}

// Fulfill completes a flight the caller leads: the flight is removed from
// the in-flight table, the score is inserted (on success) with the given
// MaxBytes charge, and every follower's Wait returns. Safe on a nil cache
// only if the flight is also nil (the degenerate Lookup outcome).
func (c *Cache) Fulfill(k Key, f *Flight, score int, cost int64, err error) {
	if c == nil || f == nil {
		return
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	if sh.flights[k] == f {
		delete(sh.flights, k)
	}
	if err == nil {
		c.insertLocked(sh, k, score, cost)
	}
	sh.mu.Unlock()
	f.score, f.err = score, err
	close(f.done)
}

// Put inserts a score directly, bypassing the flight machinery — used to
// warm the cache from already-durable results (job WAL checkpoints) and to
// publish recomputed scores after a failed flight.
func (c *Cache) Put(k Key, score int, cost int64) {
	if c == nil {
		return
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	c.insertLocked(sh, k, score, cost)
	sh.mu.Unlock()
}

// Get is a plain lookup without singleflight: a hit bumps the entry, a miss
// is just a miss. Used where the caller cannot (or need not) coalesce.
func (c *Cache) Get(k Key) (int, bool) {
	if c == nil {
		return 0, false
	}
	begin := time.Now()
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer func() { c.lookupLat.ObserveDuration(time.Since(begin)) }()
	if el, live := sh.byKey[k]; live {
		e := el.Value.(*entry)
		if e.expires.IsZero() || c.cfg.now().Before(e.expires) {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			c.hits.Add(1)
			c.mHits.Inc()
			return e.score, true
		}
		c.removeLocked(sh, el)
		c.evictTTL.Add(1)
		c.mEvictTTL.Inc()
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	c.mMisses.Inc()
	return 0, false
}

// insertLocked adds or refreshes an entry and evicts the LRU tail past the
// per-shard byte budget. Requires sh.mu held.
func (c *Cache) insertLocked(sh *shard, k Key, score int, cost int64) {
	if cost < entryOverheadBytes {
		cost = entryOverheadBytes
	}
	var expires time.Time
	if c.cfg.TTL > 0 {
		expires = c.cfg.now().Add(c.cfg.TTL)
	}
	if el, live := sh.byKey[k]; live {
		// Refresh in place: identical inputs give identical scores, so only
		// the recency and expiry change.
		e := el.Value.(*entry)
		e.score, e.expires = score, expires
		sh.bytes += cost - e.cost
		c.bytes.Add(cost - e.cost)
		e.cost = cost
		sh.lru.MoveToFront(el)
	} else {
		el := sh.lru.PushFront(&entry{key: k, score: score, cost: cost, expires: expires})
		sh.byKey[k] = el
		sh.bytes += cost
		c.bytes.Add(cost)
		c.entries.Add(1)
	}
	// Each shard owns an equal slice of the global budget, so the global
	// bound holds without cross-shard coordination.
	budget := c.cfg.MaxBytes / int64(len(c.shards))
	if budget < 1 {
		budget = 1
	}
	for sh.bytes > budget && sh.lru.Len() > 1 {
		c.removeLocked(sh, sh.lru.Back())
		c.evictLRU.Add(1)
		c.mEvictLRU.Inc()
	}
	c.gBytes.Set(float64(c.bytes.Load()))
	c.gEntries.Set(float64(c.entries.Load()))
}

// removeLocked unlinks one entry. Requires sh.mu held.
func (c *Cache) removeLocked(sh *shard, el *list.Element) {
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.byKey, e.key)
	sh.bytes -= e.cost
	c.bytes.Add(-e.cost)
	c.entries.Add(-1)
	c.gBytes.Set(float64(c.bytes.Load()))
	c.gEntries.Set(float64(c.entries.Load()))
}

// Stats is a point-in-time snapshot of the cache counters, rendered into
// /statsz. Field names are the stable wire format.
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Coalesced    int64 `json:"coalesced"`
	EvictionsLRU int64 `json:"evictions_lru"`
	EvictionsTTL int64 `json:"evictions_ttl"`
	Entries      int64 `json:"entries"`
	Bytes        int64 `json:"bytes"`
	MaxBytes     int64 `json:"max_bytes"`
	TTLMS        int64 `json:"ttl_ms"`
	Shards       int   `json:"shards"`
}

// Stats snapshots the counters. A nil cache returns the zero Stats.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		EvictionsLRU: c.evictLRU.Load(),
		EvictionsTTL: c.evictTTL.Load(),
		Entries:      c.entries.Load(),
		Bytes:        c.bytes.Load(),
		MaxBytes:     c.cfg.MaxBytes,
		TTLMS:        c.cfg.TTL.Milliseconds(),
		Shards:       len(c.shards),
	}
}

// Len returns the number of live entries (for tests and gauges).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}
