// Package repro reproduces "Accelerating the Smith-Waterman Algorithm Using
// Bitwise Parallel Bulk Computation Technique on GPU" (Nishimura, Bordim,
// Ito, Nakano — IPDPS Workshops 2017) as a Go library.
//
// The paper's idea is Bitwise Parallel Bulk Computation (BPBC): instead of
// computing one Smith-Waterman DP matrix at a time, pack one bit from each of
// W independent alignment problems into each machine word and evaluate the
// DP cell as a Boolean circuit over those words, so every word operation
// advances W alignments at once. This repository rebuilds that stack in Go,
// substituting a cycle-accurate GPU simulator (internal/cudasim +
// internal/perfmodel) for the paper's GTX hardware; DESIGN.md makes the
// substitution argument precise.
//
// # Layer map
//
// From the bottom up (the full dependency diagram is in DESIGN.md §0):
//
//   - internal/word, internal/bitslice, internal/bitmat — machine words,
//     bit-sliced arithmetic (ripple adders, saturating max, the paper's
//     Lemma constructions), and bit-matrix transposes.
//   - internal/dna, internal/alphabet, internal/swa — sequences, scoring
//     schemes, and the scalar reference Smith-Waterman that every engine is
//     validated against.
//   - internal/bpbc — the CPU BPBC engine: lane grouping, word-to-bit
//     transposes, the bit-sliced DP, and pooled per-group scratch so the
//     steady state allocates nothing per group.
//   - internal/cudasim, internal/kernels, internal/pipeline — the simulated
//     GPU, the four SW kernel families, and the five-stage
//     host→device→kernel→device→host pipeline of the paper's Table IV.
//   - internal/alignsvc, internal/aligncache, internal/server,
//     internal/jobs — the serving layer: a resilient batch service with
//     retry ladders and fault injection, a content-addressed score cache
//     with singleflight deduplication, the HTTP front end, and durable
//     WAL-backed async jobs whose recovery warms the cache.
//   - internal/bench, internal/tables, internal/stats — measurement:
//     machine-readable benchmark documents and the paper's tables/figures.
//
// # Entry points
//
// Command-line tools live under cmd/: swalign (one-shot alignment), swabench
// (tables, figures, and BENCH_pipeline.json), swaserver (the HTTP service,
// including the -cache-bytes/-cache-ttl/-cache-shards score-cache flags),
// bpbcdemo and dbfilter. Runnable walkthroughs are under examples/
// (quickstart, dbscreen, proteinscreen, gpusim, circuitdemo, gameoflife).
// The benchmark harness that regenerates every table and figure of the
// paper is bench_test.go (run `go test -bench .`) and cmd/swabench.
//
// Example_bulkScores and Example_alignService in example_test.go show the
// two APIs most callers want: scoring a batch on the CPU BPBC engine, and
// running batches through the cached, fault-tolerant service.
//
// See README.md for an overview, DESIGN.md for the system inventory and the
// hardware-substitution argument, and EXPERIMENTS.md for paper-vs-measured
// results (including the score cache's ~100× win on duplicate-heavy
// workloads).
package repro
