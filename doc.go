// Package repro reproduces "Accelerating the Smith-Waterman Algorithm Using
// Bitwise Parallel Bulk Computation Technique on GPU" (Nishimura, Bordim,
// Ito, Nakano — IPDPS Workshops 2017) as a Go library.
//
// The library API lives in internal/core; runnable examples are under
// examples/, command-line tools under cmd/, and the benchmark harness that
// regenerates every table and figure of the paper is in bench_test.go
// (run `go test -bench .`) and cmd/swabench.
//
// See README.md for an overview, DESIGN.md for the system inventory and the
// hardware-substitution argument, and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
