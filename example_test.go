package repro_test

import (
	"context"
	"fmt"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/bpbc"
	"repro/internal/dna"
	"repro/internal/obs"
)

// Example_bulkScores scores a small batch on the CPU BPBC engine: every pair
// occupies one bit-lane of the 32-lane group, so all three alignments are
// computed by the same sequence of word operations.
func Example_bulkScores() {
	pairs := []dna.Pair{
		{X: dna.MustParse("ACGT"), Y: dna.MustParse("ACGTACGT")},
		{X: dna.MustParse("ACGT"), Y: dna.MustParse("TGCATGCA")},
		{X: dna.MustParse("GATT"), Y: dna.MustParse("GCATGCAT")},
	}
	res, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{})
	if err != nil {
		panic(err)
	}
	for i, s := range res.Scores {
		fmt.Printf("%s / %s -> %d\n", pairs[i].X, pairs[i].Y, s)
	}
	// Output:
	// ACGT / ACGTACGT -> 8
	// ACGT / TGCATGCA -> 3
	// GATT / GCATGCAT -> 5
}

// Example_alignService runs the same batch twice through the cached,
// fault-tolerant alignment service. The first batch computes through the
// retry ladder and populates the content-addressed cache; the identical
// repeat is served entirely from memory.
func Example_alignService() {
	svc := alignsvc.New(alignsvc.Config{
		Seed:    1,
		Metrics: obs.NewRegistry(),
		Cache: aligncache.New(aligncache.Config{
			MaxBytes: 1 << 20,
			Metrics:  obs.NewRegistry(),
		}),
	})
	defer svc.Close()

	pairs := []dna.Pair{
		{X: dna.MustParse("ACGTACGT"), Y: dna.MustParse("ACGTTCGT")},
		{X: dna.MustParse("TTTTTTTT"), Y: dna.MustParse("TTAATTAA")},
	}
	for run := 1; run <= 2; run++ {
		res, err := svc.Align(context.Background(), pairs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("run %d: scores=%v cache hits=%d\n",
			run, res.Scores, res.Report.CacheHits)
	}
	// Output:
	// run 1: scores=[13 6] cache hits=0
	// run 2: scores=[13 6] cache hits=2
}
