package repro_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/aligncache"
	"repro/internal/alignsvc"
	"repro/internal/bpbc"
	"repro/internal/corpus"
	"repro/internal/dna"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Example_bulkScores scores a small batch on the CPU BPBC engine: every pair
// occupies one bit-lane of the 32-lane group, so all three alignments are
// computed by the same sequence of word operations.
func Example_bulkScores() {
	pairs := []dna.Pair{
		{X: dna.MustParse("ACGT"), Y: dna.MustParse("ACGTACGT")},
		{X: dna.MustParse("ACGT"), Y: dna.MustParse("TGCATGCA")},
		{X: dna.MustParse("GATT"), Y: dna.MustParse("GCATGCAT")},
	}
	res, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{})
	if err != nil {
		panic(err)
	}
	for i, s := range res.Scores {
		fmt.Printf("%s / %s -> %d\n", pairs[i].X, pairs[i].Y, s)
	}
	// Output:
	// ACGT / ACGTACGT -> 8
	// ACGT / TGCATGCA -> 3
	// GATT / GCATGCAT -> 5
}

// Example_alignService runs the same batch twice through the cached,
// fault-tolerant alignment service. The first batch computes through the
// retry ladder and populates the content-addressed cache; the identical
// repeat is served entirely from memory.
func Example_alignService() {
	svc := alignsvc.New(alignsvc.Config{
		Seed:    1,
		Metrics: obs.NewRegistry(),
		Cache: aligncache.New(aligncache.Config{
			MaxBytes: 1 << 20,
			Metrics:  obs.NewRegistry(),
		}),
	})
	defer svc.Close()

	pairs := []dna.Pair{
		{X: dna.MustParse("ACGTACGT"), Y: dna.MustParse("ACGTTCGT")},
		{X: dna.MustParse("TTTTTTTT"), Y: dna.MustParse("TTAATTAA")},
	}
	for run := 1; run <= 2; run++ {
		res, err := svc.Align(context.Background(), pairs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("run %d: scores=%v cache hits=%d\n",
			run, res.Scores, res.Report.CacheHits)
	}
	// Output:
	// run 1: scores=[13 6] cache hits=0
	// run 2: scores=[13 6] cache hits=2
}

// Example_corpusSearch builds a small on-disk corpus index with two
// planted copies of a query and runs a ranked top-K search against it.
// The k-mer prefilter narrows the corpus to a handful of candidates
// before any Smith-Waterman cell is computed; the stats funnel shows how
// much scoring the index avoided.
func Example_corpusSearch() {
	dir, err := os.MkdirTemp("", "corpus-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewPCG(7, 3))
	query := dna.RandSeq(rng, 48)
	recs := make([]dna.Record, 50)
	for i := range recs {
		seq := dna.RandSeq(rng, 64)
		if i == 12 || i == 31 { // plant two exact copies of the query
			copy(seq[8:], query)
		}
		recs[i] = dna.Record{Name: fmt.Sprintf("seq-%02d", i), Seq: seq}
	}
	c, err := corpus.Build(dir, recs, corpus.IndexOptions{})
	if err != nil {
		panic(err)
	}

	be, err := alignsvc.NewBackend(alignsvc.BackendStriped, pipeline.Config{}, 0)
	if err != nil {
		panic(err)
	}
	s := corpus.NewSearcher(c, be, nil)
	res, err := s.Search(context.Background(), query, corpus.Params{TopK: 3})
	if err != nil {
		panic(err)
	}
	for i, h := range res.Hits {
		fmt.Printf("%d. %s score=%d\n", i+1, h.Name, h.Score)
	}
	fmt.Printf("scored %d of %d sequences\n", res.Stats.Candidates, res.Stats.Seqs)
	// Output:
	// 1. seq-12 score=96
	// 2. seq-31 score=96
	// scored 2 of 50 sequences
}
