package repro

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/bitap"
	"repro/internal/bpbc"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/pipeline"
	"repro/internal/swa"
	"repro/internal/workload"
)

// TestEndToEndConsistency is the repository-wide cross-check: one workload,
// every engine — reference, wavefront, bulk CPU (both widths, parallel),
// simulated GPU (both kernel families, with and without shuffle) — must
// agree on every score.
func TestEndToEndConsistency(t *testing.T) {
	spec := workload.Unit
	pairs := spec.GenerateScreen(spec.NList[0], 0.3)

	ref := make([]int, len(pairs))
	for i, p := range pairs {
		ref[i] = swa.Score(p.X, p.Y, swa.PaperScoring)
		if w := swa.WavefrontScore(p.X, p.Y, swa.PaperScoring); w != ref[i] {
			t.Fatalf("pair %d: wavefront %d != reference %d", i, w, ref[i])
		}
	}

	check := func(name string, scores []int) {
		t.Helper()
		if len(scores) != len(ref) {
			t.Fatalf("%s: %d scores, want %d", name, len(scores), len(ref))
		}
		for i := range ref {
			if scores[i] != ref[i] {
				t.Fatalf("%s: pair %d = %d, reference %d", name, i, scores[i], ref[i])
			}
		}
	}

	b32, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	check("bulk-32", b32.Scores)

	b64, err := bpbc.BulkScores[uint64](pairs, bpbc.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check("bulk-64-parallel", b64.Scores)

	ww, err := bpbc.WordwiseScores(pairs, bpbc.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	check("wordwise", ww.Scores)

	g32, err := pipeline.RunBitwise[uint32](context.Background(), pairs, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	check("gpu-bitwise-32", g32.Scores)

	g64, err := pipeline.RunBitwise[uint64](context.Background(), pairs, pipeline.Config{UseShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	check("gpu-bitwise-64-shuffle", g64.Scores)

	gw, err := pipeline.RunWordwise(context.Background(), pairs, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	check("gpu-wordwise", gw.Scores)
}

// TestScreenPipelineEndToEnd runs the paper's full use case through the
// public facade and verifies precision/recall against a brute-force filter.
func TestScreenPipelineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	const m, n, count = 20, 256, 96
	dpairs := dna.PlantedPairs(rng, count, m, n, 0.25, dna.MutationModel{SubRate: 0.05})
	pairs := make([]core.Pair, count)
	for i, p := range dpairs {
		pairs[i] = core.Pair{X: p.X.String(), Y: p.Y.String()}
	}
	tau := core.PaperScoring.MaxScore(m) * 2 / 3

	hits, err := core.Screen(pairs, tau, core.BulkOptions{Lanes: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := swa.FilterByScore(dpairs, tau, swa.PaperScoring)
	if len(hits) != len(want) {
		t.Fatalf("screen found %d hits, brute force %d", len(hits), len(want))
	}
	for i, h := range hits {
		if h.Index != want[i].Index || h.Score != want[i].Score {
			t.Fatalf("hit %d: (%d,%d) want (%d,%d)",
				i, h.Index, h.Score, want[i].Index, want[i].Score)
		}
		if h.Alignment.Score != h.Score {
			t.Fatalf("hit %d: alignment score %d != screen score %d",
				h.Index, h.Alignment.Score, h.Score)
		}
	}
}

// TestBothStrandScreen exercises reverse-complement screening: a hit planted
// on the reverse strand is invisible to the forward screen and found by the
// reverse-complement screen.
func TestBothStrandScreen(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	const m, n = 24, 300
	x := dna.RandSeq(rng, m)
	pairs := make([]dna.Pair, 32)
	for i := range pairs {
		pairs[i] = dna.Pair{X: x, Y: dna.RandSeq(rng, n)}
	}
	// Plant the reverse complement of x into pair 11's text.
	rc := x.ReverseComplement()
	copy(pairs[11].Y[100:], rc)

	tau := swa.PaperScoring.MaxScore(m) - 1
	fwd, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx := fwd.FilterAbove(tau); len(idx) != 0 {
		t.Fatalf("forward screen should miss the reverse-strand plant, hit %v", idx)
	}
	// Screen with the reverse-complemented query.
	rcPairs := make([]dna.Pair, len(pairs))
	for i := range pairs {
		rcPairs[i] = dna.Pair{X: x.ReverseComplement(), Y: pairs[i].Y}
	}
	rev, err := bpbc.BulkScores[uint32](rcPairs, bpbc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := rev.FilterAbove(tau)
	if len(idx) != 1 || idx[0] != 11 {
		t.Fatalf("reverse screen hits %v, want [11]", idx)
	}
}

// TestIntraVsInterWordParallelism cross-validates the two bit-parallelism
// styles the repository contains on a shared task: exact occurrence finding.
func TestIntraVsInterWordParallelism(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	const m, n = 20, 400
	x := dna.RandSeq(rng, m)
	texts := make([]dna.Seq, 32)
	for i := range texts {
		texts[i] = dna.RandSeq(rng, n)
		copy(texts[i][i*10:], x)
	}
	// Intra-word: Shift-And per text.
	for k, y := range texts {
		occ, err := bitap.ShiftAnd(x, y)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, o := range occ {
			if o == k*10 {
				found = true
			}
		}
		if !found {
			t.Fatalf("ShiftAnd missed plant in text %d", k)
		}
	}
	// Inter-instance: BPBC bulk screen finds the same full-score hits.
	pairs := make([]dna.Pair, 32)
	for i := range pairs {
		pairs[i] = dna.Pair{X: x, Y: texts[i]}
	}
	res, err := bpbc.BulkScores[uint32](pairs, bpbc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := swa.PaperScoring.MaxScore(m)
	for i, s := range res.Scores {
		if s != full {
			t.Fatalf("BPBC pair %d scored %d, want %d (exact plant)", i, s, full)
		}
	}
}
