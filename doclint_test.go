package repro_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintGoFiles walks the repository and returns the non-test .go files
// grouped by directory, skipping dot-directories and results/.
func lintGoFiles(t *testing.T) map[string][]string {
	t.Helper()
	pkgs := map[string][]string{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "results") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestEveryPackageHasDocComment is the doc-lint gate: every package in the
// repository (root, internal/*, cmd/*, examples/*) must carry a package doc
// comment on at least one of its files. godoc and pkg.go.dev render that
// comment as the package's synopsis; a missing one reads as an undocumented
// subsystem.
func TestEveryPackageHasDocComment(t *testing.T) {
	pkgs := lintGoFiles(t) // directory -> .go files (tests excluded)
	if len(pkgs) < 20 {
		t.Fatalf("walk found only %d packages — lint scope broke", len(pkgs))
	}

	fset := token.NewFileSet()
	for dir, files := range pkgs {
		documented := false
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := parser.ParseFile(fset, path, src, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package in %s has no package doc comment on any file", dir)
		}
	}
}

// TestEveryExportedTypeHasDocComment extends the doc-lint gate to the
// type level: every exported type declared under internal/ must carry a
// doc comment. An exported type is a package's API surface; one without a
// comment renders as a bare name on pkg.go.dev. Grouped declarations may
// document the group instead of each spec.
func TestEveryExportedTypeHasDocComment(t *testing.T) {
	fset := token.NewFileSet()
	types := 0
	for dir, files := range lintGoFiles(t) {
		if dir != "internal" && !strings.HasPrefix(dir, "internal"+string(filepath.Separator)) {
			continue
		}
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				groupDoc := gd.Doc != nil && strings.TrimSpace(gd.Doc.Text()) != ""
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					types++
					specDoc := ts.Doc != nil && strings.TrimSpace(ts.Doc.Text()) != ""
					if !groupDoc && !specDoc {
						pos := fset.Position(ts.Pos())
						t.Errorf("%s:%d: exported type %s has no doc comment", path, pos.Line, ts.Name.Name)
					}
				}
			}
		}
	}
	if types < 50 {
		t.Fatalf("lint saw only %d exported types — scope broke", types)
	}
}
