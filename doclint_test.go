package repro_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment is the doc-lint gate: every package in the
// repository (root, internal/*, cmd/*, examples/*) must carry a package doc
// comment on at least one of its files. godoc and pkg.go.dev render that
// comment as the package's synopsis; a missing one reads as an undocumented
// subsystem.
func TestEveryPackageHasDocComment(t *testing.T) {
	pkgs := map[string][]string{} // directory -> .go files (tests excluded)
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "results") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("walk found only %d packages — lint scope broke", len(pkgs))
	}

	fset := token.NewFileSet()
	for dir, files := range pkgs {
		documented := false
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := parser.ParseFile(fset, path, src, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package in %s has no package doc comment on any file", dir)
		}
	}
}
